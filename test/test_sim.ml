(* Tests for the kernel simulator: linear algebra, device models, DC and
   transient analyses against analytic solutions. *)

let check_bool = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

let lu_tests =
  [
    Alcotest.test_case "solves 2x2" `Quick (fun () ->
        let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
        let x = Sim.Lu.solve_copy a [| 5.0; 10.0 |] in
        checkf 1e-12 "x0" 1.0 x.(0);
        checkf 1e-12 "x1" 3.0 x.(1));
    Alcotest.test_case "pivots when diagonal is zero" `Quick (fun () ->
        let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
        let x = Sim.Lu.solve_copy a [| 2.0; 3.0 |] in
        checkf 1e-12 "x0" 3.0 x.(0);
        checkf 1e-12 "x1" 2.0 x.(1));
    Alcotest.test_case "raises on singular" `Quick (fun () ->
        let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
        match Sim.Lu.solve_copy a [| 1.0; 2.0 |] with
        | exception Sim.Lu.Singular _ -> ()
        | _ -> Alcotest.fail "expected Singular");
  ]

let lu_qcheck =
  let open QCheck in
  let gen_system n =
    Gen.(
      pair
        (array_size (return (n * n)) (float_range (-10.0) 10.0))
        (array_size (return n) (float_range (-10.0) 10.0)))
  in
  [
    Test.make ~name:"lu residual small on random 6x6" ~count:200
      (make (gen_system 6)) (fun (flat, b) ->
        let n = 6 in
        let a = Array.init n (fun i -> Array.sub flat (i * n) n) in
        (* Diagonal boost keeps the matrices comfortably nonsingular. *)
        for i = 0 to n - 1 do
          a.(i).(i) <- a.(i).(i) +. 50.0
        done;
        let x = Sim.Lu.solve_copy a b in
        let ok = ref true in
        for i = 0 to n - 1 do
          let s = ref 0.0 in
          for j = 0 to n - 1 do
            s := !s +. (a.(i).(j) *. x.(j))
          done;
          if Float.abs (!s -. b.(i)) > 1e-6 then ok := false
        done;
        !ok);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let mosfet_tests =
  let nmos = Netlist.Device.default_nmos in
  let pmos = Netlist.Device.default_pmos in
  let eval_n = Sim.Mosfet.eval nmos ~w:10e-6 ~l:1e-6 in
  let eval_p = Sim.Mosfet.eval pmos ~w:10e-6 ~l:1e-6 in
  [
    Alcotest.test_case "cutoff" `Quick (fun () ->
        let e = eval_n ~vgs:0.2 ~vds:3.0 in
        checkf 1e-15 "ids" 0.0 e.Sim.Mosfet.ids);
    Alcotest.test_case "saturation current" `Quick (fun () ->
        (* beta = 60u*10 = 600u; vov = 1.2; ids = 0.5*600u*1.44*(1+0.02*3). *)
        let e = eval_n ~vgs:2.0 ~vds:3.0 in
        checkf 1e-9 "ids" (0.5 *. 600e-6 *. 1.44 *. 1.06) e.Sim.Mosfet.ids;
        check_bool "gm > 0" true (e.Sim.Mosfet.gm > 0.0);
        check_bool "gds > 0" true (e.Sim.Mosfet.gds > 0.0));
    Alcotest.test_case "linear region" `Quick (fun () ->
        let e = eval_n ~vgs:2.0 ~vds:0.1 in
        let expect = 600e-6 *. ((1.2 *. 0.1) -. 0.005) *. (1.0 +. (0.02 *. 0.1)) in
        checkf 1e-9 "ids" expect e.Sim.Mosfet.ids);
    Alcotest.test_case "reverse conduction antisymmetry" `Quick (fun () ->
        (* With lambda = 0 the channel is symmetric: swapping D and S
           negates the current. *)
        let m = { nmos with Netlist.Device.lambda = 0.0 } in
        let ev = Sim.Mosfet.eval m ~w:10e-6 ~l:1e-6 in
        let fwd = ev ~vgs:2.0 ~vds:1.0 in
        let rev = ev ~vgs:1.0 ~vds:(-1.0) in
        checkf 1e-12 "antisym" fwd.Sim.Mosfet.ids (-.rev.Sim.Mosfet.ids));
    Alcotest.test_case "pmos mirrors nmos" `Quick (fun () ->
        let ep = eval_p ~vgs:(-2.0) ~vds:(-3.0) in
        check_bool "negative current" true (ep.Sim.Mosfet.ids < 0.0);
        check_bool "gm positive" true (ep.Sim.Mosfet.gm > 0.0));
    Alcotest.test_case "regions" `Quick (fun () ->
        Alcotest.(check string) "off" "off" (Sim.Mosfet.region nmos ~vgs:0.1 ~vds:1.0);
        Alcotest.(check string) "lin" "linear" (Sim.Mosfet.region nmos ~vgs:3.0 ~vds:0.5);
        Alcotest.(check string)
          "sat" "saturation"
          (Sim.Mosfet.region nmos ~vgs:2.0 ~vds:4.0));
  ]

(* Finite-difference validation of the analytic derivatives: Newton's
   global convergence depends on these being right. *)
let mosfet_qcheck =
  let open QCheck in
  let bias = Gen.(pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0)) in
  let models = [ Netlist.Device.default_nmos; Netlist.Device.default_pmos ] in
  List.map
    (fun model ->
      let name =
        Printf.sprintf "mosfet %s derivatives match finite differences"
          model.Netlist.Device.mname
      in
      Test.make ~name ~count:500 (make bias) (fun (vgs, vds) ->
          let ev = Sim.Mosfet.eval model ~w:10e-6 ~l:1e-6 in
          let e = ev ~vgs ~vds in
          let dh = 1e-7 in
          let e_g = ev ~vgs:(vgs +. dh) ~vds in
          let e_d = ev ~vgs ~vds:(vds +. dh) in
          let fd_gm = (e_g.Sim.Mosfet.ids -. e.Sim.Mosfet.ids) /. dh in
          let fd_gds = (e_d.Sim.Mosfet.ids -. e.Sim.Mosfet.ids) /. dh in
          let close a b = Float.abs (a -. b) <= 1e-4 +. (1e-3 *. Float.abs b) in
          close fd_gm e.Sim.Mosfet.gm && close fd_gds e.Sim.Mosfet.gds))
    models
  |> List.map QCheck_alcotest.to_alcotest

let waveform_tests =
  let wf =
    Sim.Waveform.make ~names:[| "a"; "b" |]
      ~samples:[ (0.0, [| 0.0; 1.0 |]); (1.0, [| 2.0; 1.0 |]); (2.0, [| 4.0; 0.0 |]) ]
  in
  [
    Alcotest.test_case "interpolates" `Quick (fun () ->
        checkf 1e-12 "mid" 1.0 (Sim.Waveform.value_at wf "a" 0.5);
        checkf 1e-12 "knot" 2.0 (Sim.Waveform.value_at wf "a" 1.0);
        checkf 1e-12 "clamp lo" 0.0 (Sim.Waveform.value_at wf "a" (-1.0));
        checkf 1e-12 "clamp hi" 4.0 (Sim.Waveform.value_at wf "a" 99.0));
    Alcotest.test_case "resample keeps endpoints" `Quick (fun () ->
        let r = Sim.Waveform.resample wf ~n:5 in
        checkf 1e-12 "start" 0.0 (Sim.Waveform.value_at r "a" 0.0);
        checkf 1e-12 "stop" 4.0 (Sim.Waveform.value_at r "a" 2.0);
        Alcotest.(check int) "len" 5 (Sim.Waveform.length r));
    Alcotest.test_case "min max" `Quick (fun () ->
        checkf 1e-12 "min" 0.0 (Sim.Waveform.signal_min wf "b");
        checkf 1e-12 "max" 1.0 (Sim.Waveform.signal_max wf "b"));
    Alcotest.test_case "min max propagate NaN" `Quick (fun () ->
        let bad =
          Sim.Waveform.make ~names:[| "a" |]
            ~samples:[ (0.0, [| 1.0 |]); (1.0, [| Float.nan |]); (2.0, [| 3.0 |]) ]
        in
        Alcotest.(check bool) "min is nan" true
          (Float.is_nan (Sim.Waveform.signal_min bad "a"));
        Alcotest.(check bool) "max is nan" true
          (Float.is_nan (Sim.Waveform.signal_max bad "a"));
        Alcotest.(check bool) "finite flags nan" false
          (Sim.Waveform.signal_finite bad "a"));
    Alcotest.test_case "signal_finite" `Quick (fun () ->
        Alcotest.(check bool) "clean data is finite" true
          (Sim.Waveform.signal_finite wf "b");
        let inf =
          Sim.Waveform.make ~names:[| "a" |]
            ~samples:[ (0.0, [| 1.0 |]); (1.0, [| Float.infinity |]) ]
        in
        Alcotest.(check bool) "inf flagged" false
          (Sim.Waveform.signal_finite inf "a"));
    Alcotest.test_case "rejects ragged rows" `Quick (fun () ->
        match Sim.Waveform.make ~names:[| "a" |] ~samples:[ (0.0, [| 1.0; 2.0 |]) ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let parse s = (Netlist.Parser.parse s).Netlist.Parser.circuit

let dc_tests =
  [
    Alcotest.test_case "voltage divider" `Quick (fun () ->
        let c = parse "div\nV1 in 0 10\nR1 in out 1k\nR2 out 0 1k\n.end\n" in
        let sol = Compat.dc_operating_point c in
        checkf 1e-6 "out" 5.0 (Sim.Engine.voltage sol "out");
        checkf 1e-9 "source current" (-0.005) (Sim.Engine.branch_current sol "V1"));
    Alcotest.test_case "current source into resistor" `Quick (fun () ->
        let c = parse "isrc\nI1 0 out 1m\nR1 out 0 2k\n.end\n" in
        let sol = Compat.dc_operating_point c in
        checkf 1e-6 "out" 2.0 (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "inductor is a DC short" `Quick (fun () ->
        let c = parse "ldc\nV1 in 0 1\nL1 in out 1m\nR1 out 0 1k\n.end\n" in
        let sol = Compat.dc_operating_point c in
        checkf 1e-6 "out" 1.0 (Sim.Engine.voltage sol "out");
        checkf 1e-9 "iL" 1e-3 (Sim.Engine.branch_current sol "L1"));
    Alcotest.test_case "capacitor is a DC open" `Quick (fun () ->
        let c = parse "cdc\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1n\nR2 out 0 1k\n.end\n" in
        let sol = Compat.dc_operating_point c in
        checkf 1e-6 "out" 0.5 (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "diode clamp near 0.6V" `Quick (fun () ->
        let c = parse "dclamp\nV1 in 0 5\nR1 in out 1k\nD1 out 0 DX\n.model DX D IS=1e-14\n.end\n" in
        let sol = Compat.dc_operating_point c in
        let v = Sim.Engine.voltage sol "out" in
        check_bool "plausible diode drop" true (v > 0.4 && v < 0.8));
    Alcotest.test_case "nmos inverter low output for high input" `Quick (fun () ->
        let c =
          parse
            "inv\nVDD vdd 0 5\nVIN in 0 5\nRD vdd out 10k\nM1 out in 0 0 NM W=10u L=1u\n.model NM NMOS VTO=1 KP=60u\n.end\n"
        in
        let sol = Compat.dc_operating_point c in
        check_bool "low" true (Sim.Engine.voltage sol "out" < 0.5));
    Alcotest.test_case "nmos inverter high output for low input" `Quick (fun () ->
        let c =
          parse
            "inv\nVDD vdd 0 5\nVIN in 0 0\nRD vdd out 10k\nM1 out in 0 0 NM W=10u L=1u\n.model NM NMOS VTO=1 KP=60u\n.end\n"
        in
        let sol = Compat.dc_operating_point c in
        checkf 1e-3 "high" 5.0 (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "cmos inverter mid threshold" `Quick (fun () ->
        let c =
          parse
            ("cmosinv\nVDD vdd 0 5\nVIN in 0 2.5\n"
           ^ "M1 out in 0 0 NM W=10u L=1u\nM2 out in vdd vdd PM W=24u L=1u\n"
           ^ ".model NM NMOS VTO=0.8 KP=60u LAMBDA=0.02\n"
           ^ ".model PM PMOS VTO=-0.8 KP=25u LAMBDA=0.02\n.end\n")
        in
        let sol = Compat.dc_operating_point c in
        let v = Sim.Engine.voltage sol "out" in
        check_bool "in transition region" true (v > 1.0 && v < 4.0));
  ]

let tran_tests =
  [
    Alcotest.test_case "rc charging matches analytic" `Quick (fun () ->
        (* tau = 1k * 1u = 1 ms; v(t) = 5(1 - exp(-t/tau)). *)
        let c = parse "rc\nV1 in 0 5\nR1 in out 1k\nC1 out 0 1u IC=0\n.end\n" in
        let wf = Compat.transient c ~tstep:1e-5 ~tstop:5e-3 ~uic:true in
        List.iter
          (fun t ->
            let expect = 5.0 *. (1.0 -. exp (-.t /. 1e-3)) in
            let got = Sim.Waveform.value_at wf "out" t in
            checkf 0.02 (Printf.sprintf "v(%.0e)" t) expect got)
          [ 5e-4; 1e-3; 2e-3; 4e-3 ]);
    Alcotest.test_case "rc discharging from IC" `Quick (fun () ->
        let c = parse "rc2\nR1 out 0 1k\nC1 out 0 1u IC=5\n.end\n" in
        let wf = Compat.transient c ~tstep:1e-5 ~tstop:3e-3 ~uic:true in
        checkf 0.02 "v(1ms)" (5.0 *. exp (-1.0)) (Sim.Waveform.value_at wf "out" 1e-3));
    Alcotest.test_case "rl current rise" `Quick (fun () ->
        (* tau = L/R = 1 ms; i(t) = (V/R)(1-exp(-t/tau)). *)
        let c = parse "rl\nV1 in 0 1\nR1 in x 1\nL1 x 0 1m\n.end\n" in
        let wf = Compat.transient c ~tstep:1e-5 ~tstop:5e-3 ~uic:true in
        checkf 0.01 "i(1ms)"
          (1.0 -. exp (-1.0))
          (Sim.Waveform.value_at wf "I(L1)" 1e-3));
    Alcotest.test_case "pulse drives rc" `Quick (fun () ->
        let c =
          parse
            "pl\nVIN in 0 PULSE(0 5 1u 10n 10n 10u 0)\nR1 in out 1k\nC1 out 0 100p IC=0\n.end\n"
        in
        let wf = Compat.transient c ~tstep:5e-8 ~tstop:4e-6 ~uic:true in
        checkf 0.05 "still 0 before pulse" 0.0 (Sim.Waveform.value_at wf "out" 0.9e-6);
        (* 3 us after edge = 29 tau: fully settled. *)
        checkf 0.05 "settled" 5.0 (Sim.Waveform.value_at wf "out" 4e-6));
    Alcotest.test_case "lc oscillation period" `Quick (fun () ->
        (* L = 1 mH, C = 1 uF: f = 5.03 kHz; check the sign flips around a
           half period. *)
        let c = parse "lc\nL1 out 0 1m IC=0\nC1 out 0 1u IC=1\n.end\n" in
        let options =
          { Sim.Engine.default_options with integration = Sim.Engine.Trapezoidal }
        in
        let wf = Compat.transient ~options c ~tstep:2e-6 ~tstop:3e-4 ~uic:true in
        let half = Float.pi *. sqrt (1e-3 *. 1e-6) in
        let v_half = Sim.Waveform.value_at wf "out" half in
        check_bool "inverted after half period" true (v_half < -0.8));
    Alcotest.test_case "uic starts from capacitor ICs" `Quick (fun () ->
        let c = parse "ic\nR1 out 0 1k\nC1 out 0 1u IC=3\n.end\n" in
        let wf = Compat.transient c ~tstep:1e-6 ~tstop:1e-5 ~uic:true in
        checkf 0.01 "v(0)" 3.0 (Sim.Waveform.value_at wf "out" 0.0));
    Alcotest.test_case "backward euler also converges" `Quick (fun () ->
        let options =
          { Sim.Engine.default_options with integration = Sim.Engine.Backward_euler }
        in
        let c = parse "rc\nV1 in 0 5\nR1 in out 1k\nC1 out 0 1u IC=0\n.end\n" in
        let wf = Compat.transient ~options c ~tstep:1e-5 ~tstop:2e-3 ~uic:true in
        checkf 0.05 "v(1ms)" (5.0 *. (1.0 -. exp (-1.0)))
          (Sim.Waveform.value_at wf "out" 1e-3));
    Alcotest.test_case "stats are populated" `Quick (fun () ->
        let c = parse "rc\nV1 in 0 5\nR1 in out 1k\nC1 out 0 1u IC=0\n.end\n" in
        let _, stats = Compat.transient_with_stats c ~tstep:1e-5 ~tstop:1e-3 ~uic:true in
        check_bool "steps" true (stats.Sim.Engine.accepted_steps > 10);
        check_bool "iters" true (stats.Sim.Engine.newton_iterations >= stats.Sim.Engine.accepted_steps));
    Alcotest.test_case "invalid tstep rejected" `Quick (fun () ->
        let c = parse "rc\nR1 a 0 1k\n.end\n" in
        match Compat.transient c ~tstep:0.0 ~tstop:1.0 ~uic:true with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "breakpoints closer than eps are not stridden over" `Quick
      (fun () ->
        (* Two PWL knots 1e-19 s apart (well inside eps = tstop*1e-12)
           make a sharp rising edge at 1 us, followed by a fall at
           1.05 us - within one 1 us output step.  Popping only one stale
           breakpoint and keeping the unclipped step used to jump from
           1 us straight to 2 us, missing the 5 V plateau entirely. *)
        let edge = 1e-19 in
        let wave =
          Netlist.Wave.Pwl
            [ (0.0, 0.0); (1e-6, 0.0); (1e-6 +. edge, 5.0); (1.05e-6, 5.0);
              (1.05e-6 +. edge, 0.0); (4e-6, 0.0) ]
        in
        let c =
          Netlist.Circuit.of_devices "bp"
            [ Netlist.Device.V { name = "VIN"; np = "in"; nn = "0"; wave };
              Netlist.Device.R { name = "R1"; n1 = "in"; n2 = "0"; value = 1e3 } ]
        in
        let wf = Compat.transient c ~tstep:1e-6 ~tstop:4e-6 ~uic:true in
        checkf 0.05 "plateau captured" 5.0 (Sim.Waveform.value_at wf "in" 1.05e-6);
        checkf 0.05 "back down after the pulse" 0.0
          (Sim.Waveform.value_at wf "in" 3e-6));
  ]

let ac_tests =
  let c = parse "acf\nV1 in 0 DC 0\nR1 in out 1k\nC1 out 0 1u\n.end\n" in
  [
    Alcotest.test_case "unknown source rejected with empty freqs" `Quick (fun () ->
        (* The name check must run before the frequency loop: with no
           frequencies there is nothing to solve, yet the bad request
           must still be diagnosed. *)
        match Compat.ac c ~source:"VBOGUS" ~freqs:[] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "unknown source rejected before solving" `Quick (fun () ->
        match Compat.ac c ~source:"VBOGUS" ~freqs:[ 10.0; 100.0 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "valid source with empty freqs yields empty spectrum" `Quick
      (fun () ->
        let sp = Compat.ac c ~source:"V1" ~freqs:[] in
        Alcotest.(check int) "points" 0 (Sim.Spectrum.length sp));
    Alcotest.test_case "rc pole where expected" `Quick (fun () ->
        let fc = 1.0 /. (2.0 *. Float.pi *. 1e3 *. 1e-6) in
        let sp =
          Compat.ac c ~source:"V1"
            ~freqs:(Sim.Spectrum.log_grid ~f_start:1.0 ~f_stop:10e3 ~per_decade:20)
        in
        match Sim.Spectrum.corner_frequency sp "out" with
        | Some f -> checkf (fc *. 0.2) "corner" fc f
        | None -> Alcotest.fail "no corner found");
  ]

let session_tests =
  let divider = parse "div\nV1 in 0 10\nR1 in out 1k\nR2 out 0 1k\n.end\n" in
  let v_out sol = Sim.Engine.voltage sol "out" in
  [
    Alcotest.test_case "solve_dc matches dc_operating_point" `Quick (fun () ->
        let s = Sim.Engine.Session.create divider in
        checkf 1e-9 "out"
          (v_out (Compat.dc_operating_point divider))
          (v_out (Sim.Engine.Session.solve_dc s)));
    Alcotest.test_case "transient matches the standalone analysis" `Quick (fun () ->
        let c = parse "rc\nV1 in 0 5\nR1 in out 1k\nC1 out 0 1u IC=0\n.end\n" in
        let s = Sim.Engine.Session.create c in
        let wf_session, _ = Sim.Engine.Session.transient s ~tstep:1e-5 ~tstop:2e-3 ~uic:true in
        let wf_standalone = Compat.transient c ~tstep:1e-5 ~tstop:2e-3 ~uic:true in
        List.iter
          (fun t ->
            checkf 1e-9
              (Printf.sprintf "v(%.0e)" t)
              (Sim.Waveform.value_at wf_standalone "out" t)
              (Sim.Waveform.value_at wf_session "out" t))
          [ 2e-4; 1e-3; 2e-3 ]);
    Alcotest.test_case "with_patch applies an added resistor and restores" `Quick
      (fun () ->
        let s = Sim.Engine.Session.create divider in
        let patched =
          Netlist.Circuit.add divider
            (Netlist.Device.R { name = "RF"; n1 = "out"; n2 = "0"; value = 1e3 })
        in
        (* out: 1k || 1k against 1k -> 10 * (500/1500). *)
        let v =
          Sim.Engine.Session.with_patch s patched (fun s ->
              v_out (Sim.Engine.Session.solve_dc s))
        in
        checkf 1e-6 "patched" (10.0 /. 3.0) v;
        checkf 1e-6 "restored" 5.0 (v_out (Sim.Engine.Session.solve_dc s)));
    Alcotest.test_case "with_patch supports one new node" `Quick (fun () ->
        let s = Sim.Engine.Session.create divider in
        (* Break R2's ground leg through an extra 1k: out = 10 * 2/3. *)
        let patched =
          Netlist.Circuit.replace divider
            (Netlist.Device.R { name = "R2"; n1 = "out"; n2 = "nx"; value = 1e3 })
        in
        let patched =
          Netlist.Circuit.add patched
            (Netlist.Device.R { name = "RB"; n1 = "nx"; n2 = "0"; value = 1e3 })
        in
        let v =
          Sim.Engine.Session.with_patch s patched (fun s ->
              v_out (Sim.Engine.Session.solve_dc s))
        in
        checkf 1e-6 "patched" (20.0 /. 3.0) v);
    Alcotest.test_case "with_patch supports one new branch" `Quick (fun () ->
        let s = Sim.Engine.Session.create divider in
        let patched =
          Netlist.Circuit.add divider
            (Netlist.Device.V
               { name = "VB"; np = "out"; nn = "0"; wave = Netlist.Wave.Dc 0.0 })
        in
        let v =
          Sim.Engine.Session.with_patch s patched (fun s ->
              v_out (Sim.Engine.Session.solve_dc s))
        in
        checkf 1e-9 "shorted" 0.0 v);
    Alcotest.test_case "two new nodes overflow the patch" `Quick (fun () ->
        let s = Sim.Engine.Session.create divider in
        let patched =
          Netlist.Circuit.replace divider
            (Netlist.Device.R { name = "R1"; n1 = "in"; n2 = "na"; value = 1e3 })
        in
        let patched =
          Netlist.Circuit.replace patched
            (Netlist.Device.R { name = "R2"; n1 = "nb"; n2 = "0"; value = 1e3 })
        in
        (match
           Sim.Engine.Session.with_patch s patched (fun s ->
               v_out (Sim.Engine.Session.solve_dc s))
         with
        | exception Sim.Engine.Patch_overflow _ -> ()
        | _ -> Alcotest.fail "expected Patch_overflow");
        (* The failed patch must not poison the session. *)
        checkf 1e-6 "still nominal" 5.0 (v_out (Sim.Engine.Session.solve_dc s)));
    Alcotest.test_case "removing a device overflows the patch" `Quick (fun () ->
        let s = Sim.Engine.Session.create divider in
        let patched = Netlist.Circuit.remove divider "R2" in
        match Sim.Engine.Session.with_patch s patched (fun _ -> ()) with
        | exception Sim.Engine.Patch_overflow _ -> ()
        | _ -> Alcotest.fail "expected Patch_overflow");
  ]

(* Property tests on whole analyses. *)
let engine_qcheck =
  let open QCheck in
  (* Random resistor ladders driven by one source: the solver must be
     linear (superposition) and must match the analytic series divider. *)
  let ladder_gen =
    Gen.(list_size (int_range 2 8) (float_range 100.0 100_000.0))
  in
  let ladder_circuit rs vin =
    let n = List.length rs in
    let devices =
      Netlist.Device.V { name = "V1"; np = "n0"; nn = "0"; wave = Netlist.Wave.Dc vin }
      :: List.mapi
           (fun i r ->
             let n1 = Printf.sprintf "n%d" i in
             let n2 = if i = n - 1 then "0" else Printf.sprintf "n%d" (i + 1) in
             Netlist.Device.R { name = Printf.sprintf "R%d" i; n1; n2; value = r })
           rs
    in
    Netlist.Circuit.of_devices "ladder" devices
  in
  [
    Test.make ~name:"series ladder matches analytic divider" ~count:100
      (make ~print:(fun l -> String.concat ";" (List.map string_of_float l)) ladder_gen)
      (fun rs ->
        let vin = 10.0 in
        let sol = Compat.dc_operating_point (ladder_circuit rs vin) in
        let total = List.fold_left ( +. ) 0.0 rs in
        let rec below i = function
          | [] -> []
          | r :: rest -> (i, r) :: below (i + 1) rest
        in
        List.for_all
          (fun (i, _) ->
            let drop =
              List.fold_left ( +. ) 0.0 (List.filteri (fun j _ -> j < i) rs)
            in
            let expect = vin *. (1.0 -. (drop /. total)) in
            Float.abs (Sim.Engine.voltage sol (Printf.sprintf "n%d" i) -. expect)
            < 1e-6 +. (1e-6 *. Float.abs expect))
          (below 0 rs));
    Test.make ~name:"linear solve obeys superposition" ~count:100
      (make ~print:(fun l -> String.concat ";" (List.map string_of_float l)) ladder_gen)
      (fun rs ->
        let v_at vin node =
          Sim.Engine.voltage (Compat.dc_operating_point (ladder_circuit rs vin)) node
        in
        let node = "n1" in
        let a = v_at 3.0 node and b = v_at 7.0 node and ab = v_at 10.0 node in
        Float.abs (a +. b -. ab) < 1e-6);
    Test.make ~name:"capacitor ramps linearly under constant current" ~count:50
      (make ~print:string_of_float Gen.(float_range 1e-12 1e-9))
      (fun c ->
        let circuit =
          Netlist.Circuit.of_devices "ramp"
            [ Netlist.Device.I
                { name = "I1"; np = "0"; nn = "out"; wave = Netlist.Wave.Dc 1e-6 };
              Netlist.Device.C { name = "C1"; n1 = "out"; n2 = "0"; value = c; ic = Some 0.0 } ]
        in
        let tstop = c *. 2.0 /. 1e-6 in
        (* time for 2 V at 1 uA *)
        let wf =
          Compat.transient circuit ~tstep:(tstop /. 100.0) ~tstop ~uic:true
        in
        let v = Sim.Waveform.value_at wf "out" (tstop /. 2.0) in
        Float.abs (v -. 1.0) < 0.02);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let robustness_tests =
  [
    Alcotest.test_case "conflicting ideal sources do not converge" `Quick (fun () ->
        let c = parse "bad\nV1 a 0 1\nV2 a 0 2\n.end\n" in
        match Compat.dc_operating_point c with
        | exception Sim.Engine.Sim_error _ -> ()
        | exception Sim.Lu.Singular _ -> ()
        | _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "zero-valued resistor rejected" `Quick (fun () ->
        let c =
          Netlist.Circuit.of_devices "z"
            [ Netlist.Device.R { name = "R1"; n1 = "a"; n2 = "0"; value = 0.0 } ]
        in
        match Compat.dc_operating_point c with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "floating node pinned by gmin" `Quick (fun () ->
        let c = parse "float\nV1 a 0 5\nR1 a b 1k\nC1 c 0 1p\n.end\n" in
        let sol = Compat.dc_operating_point c in
        (* b carries no current -> sits at a; c floats -> gmin pins it. *)
        checkf 1e-3 "b" 5.0 (Sim.Engine.voltage sol "b");
        checkf 1e-3 "c" 0.0 (Sim.Engine.voltage sol "c"));
    Alcotest.test_case "spectrum rejects unsorted frequencies" `Quick (fun () ->
        match
          Sim.Spectrum.make ~names:[| "x" |]
            ~points:[ (10.0, [| Complex.one |]); (5.0, [| Complex.one |]) ]
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "integration error shrinks with the step" `Quick (fun () ->
        (* Backward Euler is first order: both steps must bracket the
           analytic value, the finer one much closer. *)
        let c = parse "rc\nV1 in 0 5\nR1 in out 1k\nC1 out 0 1u IC=0\n.end\n" in
        let v tstep =
          let wf = Compat.transient c ~tstep ~tstop:2e-3 ~uic:true in
          Sim.Waveform.value_at wf "out" 1e-3
        in
        let exact = 5.0 *. (1.0 -. exp (-1.0)) in
        let e_fine = Float.abs (v 1e-5 -. exact)
        and e_coarse = Float.abs (v 1e-4 -. exact) in
        check_bool "fine accurate" true (e_fine < 0.02);
        check_bool "coarse sane" true (e_coarse < 0.15);
        check_bool "order holds" true (e_fine < e_coarse));
  ]

(* MNA bookkeeping on degenerate shapes: circuits whose unknowns are all
   branch currents, shared node names across devices, and devices wired
   entirely to ground. *)
let mna_edge_tests =
  [
    Alcotest.test_case "branch-only circuit (V and L)" `Quick (fun () ->
        let c =
          Netlist.Circuit.of_devices "branches"
            [ Netlist.Device.V
                { name = "V1"; np = "a"; nn = "0"; wave = Netlist.Wave.Dc 1.0 };
              Netlist.Device.L
                { name = "L1"; n1 = "a"; n2 = "0"; value = 1e-3; ic = None } ]
        in
        let m = Sim.Mna.make c in
        Alcotest.(check int) "node count" 1 (Sim.Mna.node_count m);
        Alcotest.(check int) "size" 3 (Sim.Mna.size m);
        Alcotest.(check int)
          "branches" 2
          (Array.length (Sim.Mna.branch_names m));
        (* Branch ids live past the nodes and carry I(...) names. *)
        List.iter
          (fun d ->
            let i = Sim.Mna.branch_id m d in
            check_bool "branch id in range" true
              (i >= Sim.Mna.node_count m && i < Sim.Mna.size m);
            Alcotest.(check string)
              "branch name" ("I(" ^ d ^ ")")
              (Sim.Mna.unknown_name m i))
          [ "V1"; "L1" ]);
    Alcotest.test_case "duplicate node names index once" `Quick (fun () ->
        let c =
          Netlist.Circuit.of_devices "dup"
            [ Netlist.Device.R { name = "R1"; n1 = "a"; n2 = "b"; value = 1e3 };
              Netlist.Device.R { name = "R2"; n1 = "b"; n2 = "a"; value = 1e3 };
              Netlist.Device.C
                { name = "C1"; n1 = "a"; n2 = "0"; value = 1e-9; ic = None } ]
        in
        let m = Sim.Mna.make c in
        Alcotest.(check int) "node count" 2 (Sim.Mna.node_count m);
        Alcotest.(check int) "size" 2 (Sim.Mna.size m);
        (* node_id and node_names/unknown_name agree index by index. *)
        Array.iteri
          (fun i name ->
            Alcotest.(check int) ("id of " ^ name) i (Sim.Mna.node_id m name);
            Alcotest.(check string) "name" name (Sim.Mna.unknown_name m i))
          (Sim.Mna.node_names m));
    Alcotest.test_case "ground-only ports yield no unknowns" `Quick (fun () ->
        let c =
          Netlist.Circuit.of_devices "gnd"
            [ Netlist.Device.R { name = "R1"; n1 = "0"; n2 = "0"; value = 1e3 } ]
        in
        let m = Sim.Mna.make c in
        Alcotest.(check int) "size" 0 (Sim.Mna.size m);
        Alcotest.(check int) "ground id" (-1) (Sim.Mna.node_id m "0");
        Alcotest.(check string) "ground name" "0" (Sim.Mna.unknown_name m (-1)));
    Alcotest.test_case "ground-to-ground source still owns a branch" `Quick
      (fun () ->
        let c =
          Netlist.Circuit.of_devices "gndv"
            [ Netlist.Device.V
                { name = "V1"; np = "0"; nn = "0"; wave = Netlist.Wave.Dc 1.0 } ]
        in
        let m = Sim.Mna.make c in
        Alcotest.(check int) "node count" 0 (Sim.Mna.node_count m);
        Alcotest.(check int) "size" 1 (Sim.Mna.size m);
        Alcotest.(check int) "branch id" 0 (Sim.Mna.branch_id m "V1");
        Alcotest.(check string) "name" "I(V1)" (Sim.Mna.unknown_name m 0));
  ]

(* The solver layer itself: backend selection, the sparse backend's
   stamp/compile/factor lifecycle, and dense/sparse agreement on whole
   analyses. *)
let solver_tests =
  let dense = { Sim.Engine.default_options with solver = Sim.Solver.Dense } in
  let sparse = { Sim.Engine.default_options with solver = Sim.Solver.Sparse } in
  [
    Alcotest.test_case "backend names round-trip" `Quick (fun () ->
        List.iter
          (fun b ->
            match Sim.Solver.(backend_of_string (backend_to_string b)) with
            | Ok b' -> check_bool "round trip" true (b = b')
            | Error e -> Alcotest.fail e)
          [ Sim.Solver.Auto; Sim.Solver.Dense; Sim.Solver.Sparse ];
        match Sim.Solver.backend_of_string "cholesky" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error");
    Alcotest.test_case "auto resolves by capacity" `Quick (fun () ->
        let small = Sim.Solver.create Sim.Solver.Auto ~capacity:10 in
        let big =
          Sim.Solver.create Sim.Solver.Auto ~capacity:Sim.Solver.auto_threshold
        in
        check_bool "small is dense" true (Sim.Solver.backend small = Sim.Solver.Dense);
        check_bool "big is sparse" true (Sim.Solver.backend big = Sim.Solver.Sparse));
    Alcotest.test_case "sparse solves a stamped 2x2" `Quick (fun () ->
        let sp = Sim.Sparse.create ~capacity:2 in
        Sim.Sparse.begin_stamp sp ~n:2;
        Sim.Sparse.add sp 0 0 2.0;
        Sim.Sparse.add sp 0 1 1.0;
        Sim.Sparse.add sp 1 0 1.0;
        Sim.Sparse.add sp 1 1 3.0;
        Sim.Sparse.add_rhs sp 0 5.0;
        Sim.Sparse.add_rhs sp 1 10.0;
        Sim.Sparse.finish sp;
        Sim.Sparse.factor_solve sp;
        let x = Sim.Sparse.rhs sp in
        checkf 1e-12 "x0" 1.0 x.(0);
        checkf 1e-12 "x1" 3.0 x.(1));
    Alcotest.test_case "sparse refactorises on a stable pattern" `Quick (fun () ->
        let sp = Sim.Sparse.create ~capacity:3 in
        for round = 1 to 3 do
          Sim.Sparse.begin_stamp sp ~n:3;
          for i = 0 to 2 do
            Sim.Sparse.add sp i i (4.0 +. float_of_int round);
            Sim.Sparse.add_rhs sp i 1.0
          done;
          Sim.Sparse.add sp 0 2 1.0;
          Sim.Sparse.add sp 2 0 1.0;
          Sim.Sparse.finish sp;
          Sim.Sparse.factor_solve sp
        done;
        let full, refactor, solves, symbolic, _ = Sim.Sparse.stats sp in
        Alcotest.(check int) "one full factorisation" 1 full;
        Alcotest.(check int) "rest are refactorisations" 2 refactor;
        Alcotest.(check int) "solves" 3 solves;
        Alcotest.(check int) "one symbolic pass" 1 symbolic);
    Alcotest.test_case "sparse raises Singular on a rank-1 system" `Quick
      (fun () ->
        let sp = Sim.Sparse.create ~capacity:2 in
        Sim.Sparse.begin_stamp sp ~n:2;
        Sim.Sparse.add sp 0 0 1.0;
        Sim.Sparse.add sp 0 1 2.0;
        Sim.Sparse.add sp 1 0 2.0;
        Sim.Sparse.add sp 1 1 4.0;
        Sim.Sparse.finish sp;
        match Sim.Sparse.factor_solve sp with
        | exception Sim.Sparse.Singular i ->
            check_bool "original index" true (i = 0 || i = 1)
        | () -> Alcotest.fail "expected Singular");
    Alcotest.test_case "dense and sparse agree on a grid DC point" `Quick
      (fun () ->
        let c = Synth.Circuit_synth.resistor_grid ~rows:4 ~cols:4 () in
        let sd = Compat.dc_operating_point ~options:dense c in
        let ss = Compat.dc_operating_point ~options:sparse c in
        for r = 0 to 3 do
          for col = 0 to 3 do
            let node = Printf.sprintf "g%d_%d" r col in
            checkf 1e-9 node
              (Sim.Engine.voltage sd node)
              (Sim.Engine.voltage ss node)
          done
        done);
    Alcotest.test_case "dense and sparse agree on a nonlinear transient" `Quick
      (fun () ->
        let c = Synth.Circuit_synth.rc_ladder ~diodes:true ~sections:20 () in
        let wd = Compat.transient ~options:dense c ~tstep:1e-7 ~tstop:2e-6 ~uic:false in
        let ws = Compat.transient ~options:sparse c ~tstep:1e-7 ~tstop:2e-6 ~uic:false in
        List.iter
          (fun node ->
            List.iter
              (fun t ->
                checkf 1e-9
                  (Printf.sprintf "%s @ %.1e" node t)
                  (Sim.Waveform.value_at wd node t)
                  (Sim.Waveform.value_at ws node t))
              [ 5e-7; 1.2e-6; 2e-6 ])
          [ "n1"; "n10"; "n20" ]);
    Alcotest.test_case "sparse session patches reuse the pattern" `Quick (fun () ->
        let divider = parse "div\nV1 in 0 10\nR1 in out 1k\nR2 out 0 1k\n.end\n" in
        let v_out sol = Sim.Engine.voltage sol "out" in
        let s = Sim.Engine.Session.create ~options:sparse divider in
        checkf 1e-6 "nominal" 5.0 (v_out (Sim.Engine.Session.solve_dc s));
        let patched =
          Netlist.Circuit.add divider
            (Netlist.Device.R { name = "RF"; n1 = "out"; n2 = "0"; value = 1e3 })
        in
        let v =
          Sim.Engine.Session.with_patch s patched (fun s ->
              v_out (Sim.Engine.Session.solve_dc s))
        in
        checkf 1e-6 "patched" (10.0 /. 3.0) v;
        (* A patch that grows the system exercises the identity-padded
           overlay rows of the shared pattern. *)
        let grown =
          Netlist.Circuit.add
            (Netlist.Circuit.replace divider
               (Netlist.Device.R { name = "R2"; n1 = "out"; n2 = "nx"; value = 1e3 }))
            (Netlist.Device.R { name = "RB"; n1 = "nx"; n2 = "0"; value = 1e3 })
        in
        let v =
          Sim.Engine.Session.with_patch s grown (fun s ->
              v_out (Sim.Engine.Session.solve_dc s))
        in
        checkf 1e-6 "grown patch" (20.0 /. 3.0) v;
        checkf 1e-6 "restored" 5.0 (v_out (Sim.Engine.Session.solve_dc s)));
    Alcotest.test_case "singular failure names the offending unknown" `Quick
      (fun () ->
        let c = parse "bad\nV1 a 0 1\nV2 a 0 2\n.end\n" in
        match Compat.dc_operating_point c with
        | exception Sim.Engine.Sim_error (Sim.Engine.Singular_matrix, detail) ->
            let mentions s =
              let ls = String.length s and ld = String.length detail in
              let rec scan i = i >= 0 && (String.sub detail i ls = s || scan (i - 1)) in
              ld >= ls && scan (ld - ls)
            in
            check_bool
              (Printf.sprintf "detail names an unknown: %s" detail)
              true
              (mentions "at unknown ");
            check_bool
              (Printf.sprintf "detail carries a circuit name: %s" detail)
              true
              (mentions "a" || mentions "I(V1)" || mentions "I(V2)")
        | exception (Sim.Engine.Sim_error _ as e) -> raise e
        | _ -> Alcotest.fail "expected Singular_matrix");
  ]

(* Complex LU scratch reuse (the AC path) and the post-pivot row index
   both real and complex factorisations report on singularity. *)
let clu_tests =
  [
    Alcotest.test_case "factor_solve reuses one scratch across systems" `Quick
      (fun () ->
        let scratch = Sim.Clu.make_scratch 3 in
        Alcotest.(check int) "capacity" 3 (Sim.Clu.scratch_capacity scratch);
        let solve_with_scratch a b =
          let a = Array.map Array.copy a and b = Array.copy b in
          Sim.Clu.factor_solve ~n:(Array.length b) scratch a b;
          b
        in
        let check_case a b =
          let expect = Sim.Clu.solve_copy a b in
          let got = solve_with_scratch a b in
          Array.iteri
            (fun i e ->
              checkf 1e-12 "re" e.Complex.re got.(i).Complex.re;
              checkf 1e-12 "im" e.Complex.im got.(i).Complex.im)
            expect
        in
        let c re im = { Complex.re; im } in
        check_case
          [| [| c 2.0 0.0; c 1.0 1.0 |]; [| c 0.0 (-1.0); c 3.0 0.0 |] |]
          [| c 5.0 0.0; c 10.0 2.0 |];
        check_case
          [| [| c 0.0 1.0; c 4.0 0.0 |]; [| c 1.0 0.0; c 0.0 0.0 |] |]
          [| c 2.0 0.0; c 3.0 1.0 |]);
    Alcotest.test_case "undersized scratch rejected" `Quick (fun () ->
        let scratch = Sim.Clu.make_scratch 1 in
        let a = [| [| Complex.one; Complex.zero |]; [| Complex.zero; Complex.one |] |] in
        match Sim.Clu.factor_solve scratch a [| Complex.one; Complex.one |] with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "Lu.Singular reports the post-pivot row" `Quick (fun () ->
        (* Column 0 pivots on row 1, so the vanished second pivot lives in
           original row 0 - the payload must say 0, not 1. *)
        let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
        match Sim.Lu.solve_copy a [| 1.0; 2.0 |] with
        | exception Sim.Lu.Singular row -> Alcotest.(check int) "row" 0 row
        | _ -> Alcotest.fail "expected Singular");
    Alcotest.test_case "Clu.Singular reports the post-pivot row" `Quick (fun () ->
        let r x = { Complex.re = x; im = 0.0 } in
        let a = [| [| r 1.0; r 2.0 |]; [| r 2.0; r 4.0 |] |] in
        match Sim.Clu.solve_copy a [| r 1.0; r 2.0 |] with
        | exception Sim.Clu.Singular row -> Alcotest.(check int) "row" 0 row
        | _ -> Alcotest.fail "expected Singular");
  ]

let suites =
  [
    ("sim.lu", lu_tests);
    ("sim.lu.properties", lu_qcheck);
    ("sim.mosfet", mosfet_tests);
    ("sim.mosfet.properties", mosfet_qcheck);
    ("sim.waveform", waveform_tests);
    ("sim.dc", dc_tests);
    ("sim.tran", tran_tests);
    ("sim.ac.validation", ac_tests);
    ("sim.session", session_tests);
    ("sim.engine.properties", engine_qcheck);
    ("sim.robustness", robustness_tests);
    ("sim.mna.edges", mna_edge_tests);
    ("sim.solver", solver_tests);
    ("sim.clu.scratch", clu_tests);
  ]
