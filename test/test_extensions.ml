(* Tests for the capabilities layered on top of the paper's core flow:
   the fault-list file format, L2RFM, Monte-Carlo IFA, yield estimation,
   SVG rendering, and the AC / DC-sweep analyses with their fault
   loops. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf tol = Alcotest.(check (float tol))

let parse s = (Netlist.Parser.parse s).Netlist.Parser.circuit

(* --- fault-list file format --- *)

let sample_faults =
  [
    Faults.Fault.make ~id:"#1"
      ~kind:(Faults.Fault.Bridge { net_a = "a"; net_b = "b" })
      ~mechanism:"metal1_short" ~prob:3.2e-7 ();
    Faults.Fault.make ~id:"#2"
      ~kind:(Faults.Fault.Break
               { net = "n";
                 moved =
                   [ { Faults.Fault.device = "M1"; port = 0 };
                     { Faults.Fault.device = "M2"; port = 2 } ] })
      ~mechanism:"poly_open" ~prob:4e-8 ();
    Faults.Fault.make ~id:"#3" ~kind:(Faults.Fault.Stuck_open { device = "M11" })
      ~mechanism:"channel_open" ~prob:5.7e-7 ();
  ]

let fault_list_tests =
  [
    Alcotest.test_case "round trip" `Quick (fun () ->
        let text = Faults.Fault_list.to_string sample_faults in
        let back = Faults.Fault_list.of_string text in
        check_int "count" 3 (List.length back);
        List.iter2
          (fun (a : Faults.Fault.t) b ->
            check_bool "same" true (Faults.Fault.equivalent a b);
            Alcotest.(check string) "id" a.id b.Faults.Fault.id;
            Alcotest.(check string) "mech" a.mechanism b.Faults.Fault.mechanism;
            checkf 1e-12 "prob" a.prob b.Faults.Fault.prob)
          sample_faults back);
    Alcotest.test_case "comments and blanks skipped" `Quick (fun () ->
        let text = "# header comment\n\n; another\n#1 m1_short BRI a b p=1e-7\n" in
        check_int "one" 1 (List.length (Faults.Fault_list.of_string text)));
    Alcotest.test_case "bad terminal reports line" `Quick (fun () ->
        match Faults.Fault_list.of_string "#1 m OPEN n / notaport\n" with
        | exception Faults.Fault_list.Parse_error (1, _) -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "device names containing dots" `Quick (fun () ->
        let f =
          Faults.Fault.make ~id:"#1"
            ~kind:(Faults.Fault.Break
                     { net = "n"; moved = [ { Faults.Fault.device = "X.M1"; port = 1 } ] })
            ~mechanism:"m" ()
        in
        match Faults.Fault_list.of_string (Faults.Fault_list.to_string [ f ]) with
        | [ back ] -> check_bool "same" true (Faults.Fault.equivalent f back)
        | _ -> Alcotest.fail "expected one fault");
  ]

(* --- L2RFM --- *)

let l2rfm_tests =
  [
    Alcotest.test_case "vco mapping is local and nonempty" `Slow (fun () ->
        let r = Defects.L2rfm.run (Cat.Demo.schematic ()) in
        check_bool "nonempty" true (r.Defects.L2rfm.faults <> []);
        let circuit = Cat.Demo.schematic () in
        List.iter
          (fun f ->
            check_bool
              ("local: " ^ Faults.Fault.to_string f)
              true
              (Faults.Fault.is_local circuit f))
          r.Defects.L2rfm.faults);
    Alcotest.test_case "ds short of a wide device is mapped" `Slow (fun () ->
        let r = Defects.L2rfm.run (Cat.Demo.schematic ()) in
        (* M11: d=13 s=0, a 300 um channel: its template must yield the
           drain-source bridge. *)
        check_bool "found" true
          (List.exists
             (fun (f : Faults.Fault.t) ->
               match f.kind with
               | Faults.Fault.Bridge { net_a; net_b } ->
                 List.sort compare [ net_a; net_b ] = [ "0"; "13" ]
               | _ -> false)
             r.Defects.L2rfm.faults));
    Alcotest.test_case "diode-connected devices yield no gd bridge" `Slow (fun () ->
        let r = Defects.L2rfm.run (Cat.Demo.schematic ()) in
        (* M2's gate and drain are the same net (3): a bridge 3<->3 must
           have been dropped as electrically void. *)
        check_bool "no self bridge" true
          (List.for_all
             (fun (f : Faults.Fault.t) ->
               match f.kind with
               | Faults.Fault.Bridge { net_a; net_b } -> net_a <> net_b
               | _ -> true)
             r.Defects.L2rfm.faults));
    Alcotest.test_case "glrfm comparison partitions completely" `Slow (fun () ->
        let l2 = Defects.L2rfm.run (Cat.Demo.schematic ()) in
        let glrfm =
          (Cat.run_glrfm ~extractor_options:Cat.Demo.extractor_options
             ~golden:(Cat.Demo.schematic ()) (Cat.Demo.mask ()))
            .Cat.lift
            .Defects.Lift.faults
        in
        let `Anticipated a, `Global_only g =
          Defects.L2rfm.compare_with_glrfm ~l2rfm:l2 ~glrfm
        in
        check_int "partition" (List.length glrfm) (List.length a + List.length g);
        check_bool "some anticipated" true (a <> []);
        check_bool "some global-only" true (g <> []));
  ]

(* --- Monte-Carlo IFA --- *)

let pt = Geom.Point.make

let two_wires_ext () =
  let b = Layout.Builder.create Layout.Tech.default in
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000 [ pt 0 0; pt 100000 0 ];
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000 [ pt 0 4500; pt 100000 4500 ];
  Layout.Builder.label b Layout.Layer.Metal1 (pt 0 0) "a";
  Layout.Builder.label b Layout.Layer.Metal1 (pt 0 4500) "b";
  Extract.Extractor.extract (Layout.Builder.finish b)

let monte_carlo_tests =
  [
    Alcotest.test_case "deterministic for a fixed seed" `Quick (fun () ->
        let ext = two_wires_ext () in
        let a = Defects.Monte_carlo.run ~seed:7 ~samples:2000 ext in
        let b = Defects.Monte_carlo.run ~seed:7 ~samples:2000 ext in
        check_int "same effective" a.Defects.Monte_carlo.effective
          b.Defects.Monte_carlo.effective);
    Alcotest.test_case "parallel wires produce the bridge" `Quick (fun () ->
        let ext = two_wires_ext () in
        let r = Defects.Monte_carlo.run ~seed:1 ~samples:20000 ext in
        check_bool "hits" true (r.Defects.Monte_carlo.effective > 0);
        check_bool "the a-b bridge" true
          (List.exists
             (fun ((f : Faults.Fault.t), _) ->
               match f.kind with
               | Faults.Fault.Bridge { net_a; net_b } ->
                 List.sort compare [ net_a; net_b ] = [ "a"; "b" ]
               | _ -> false)
             r.Defects.Monte_carlo.hits));
    Alcotest.test_case "hit probabilities sum to at least 1" `Quick (fun () ->
        (* Multi-fault defects can push the sum above one. *)
        let ext = two_wires_ext () in
        let r = Defects.Monte_carlo.run ~seed:1 ~samples:20000 ext in
        let total =
          List.fold_left (fun acc ((f : Faults.Fault.t), _) -> acc +. f.prob) 0.0
            r.Defects.Monte_carlo.hits
        in
        check_bool "sane" true (total >= 0.99));
    Alcotest.test_case "agreement with matching list is 1" `Quick (fun () ->
        let ext = two_wires_ext () in
        let r = Defects.Monte_carlo.run ~seed:1 ~samples:20000 ext in
        let faults = List.map fst r.Defects.Monte_carlo.hits in
        checkf 1e-9 "full" 1.0 (Defects.Monte_carlo.agreement r faults);
        checkf 1e-9 "empty" 0.0 (Defects.Monte_carlo.agreement r []));
  ]

(* --- yield --- *)

let yield_tests =
  [
    Alcotest.test_case "yield between 0 and 1, lambda positive" `Quick (fun () ->
        let y = Defects.Yield_model.estimate (two_wires_ext ()) in
        check_bool "lambda" true (y.Defects.Yield_model.lambda > 0.0);
        check_bool "range" true
          (y.Defects.Yield_model.poisson_yield > 0.0
          && y.Defects.Yield_model.poisson_yield < 1.0));
    Alcotest.test_case "negative binomial approaches poisson" `Quick (fun () ->
        let y = Defects.Yield_model.estimate (two_wires_ext ()) in
        checkf 1e-6 "limit" y.Defects.Yield_model.poisson_yield
          (Defects.Yield_model.negative_binomial y ~alpha:1e9);
        check_bool "clustering raises yield" true
          (Defects.Yield_model.negative_binomial y ~alpha:0.5
          >= y.Defects.Yield_model.poisson_yield));
    Alcotest.test_case "per-mechanism lambdas sum to total" `Quick (fun () ->
        let y = Defects.Yield_model.estimate (two_wires_ext ()) in
        let s =
          List.fold_left (fun acc (_, l) -> acc +. l) 0.0 y.Defects.Yield_model.per_mechanism
        in
        checkf 1e-12 "sum" y.Defects.Yield_model.lambda s);
  ]

(* --- SVG --- *)

let svg_tests =
  [
    Alcotest.test_case "renders every drawn layer" `Quick (fun () ->
        let b = Layout.Builder.create Layout.Tech.default in
        ignore (Layout.Builder.mos b ~name:"M1" ~kind:`P ~at:(pt 0 0) ~w:4000 ~l:1000 ());
        Layout.Builder.label b Layout.Layer.Metal1
          (Layout.Builder.mos b ~name:"M2" ~kind:`N ~at:(pt 40000 0) ~w:4000 ~l:1000 ())
            .Layout.Builder.source "probe";
        let svg = Layout.Svg.render (Layout.Builder.finish b) in
        List.iter
          (fun needle ->
            let contains hay needle =
              let nh = String.length hay and nn = String.length needle in
              let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
              go 0
            in
            check_bool needle true (contains svg needle))
          [ "<svg"; "</svg>"; "<rect"; "probe" ]);
    Alcotest.test_case "width parameter respected" `Quick (fun () ->
        let b = Layout.Builder.create Layout.Tech.default in
        Layout.Builder.rect b Layout.Layer.Metal1 (Geom.Rect.make 0 0 1000 1000);
        let svg = Layout.Svg.render ~width:333 (Layout.Builder.finish b) in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "width" true (contains svg "width=\"333\""));
  ]

(* --- AC analysis --- *)

let clu_tests =
  [
    Alcotest.test_case "solves complex 2x2" `Quick (fun () ->
        let i = Complex.i in
        let one = Complex.one in
        let a = [| [| Complex.add one i; Complex.zero |]; [| one; i |] |] in
        let b = [| Complex.add one i; Complex.add one i |] in
        let x = Sim.Clu.solve_copy a b in
        (* first row: (1+i) x0 = 1+i -> x0 = 1; second: x0 + i x1 = 1+i -> x1 = 1 *)
        checkf 1e-12 "x0 re" 1.0 x.(0).Complex.re;
        checkf 1e-12 "x0 im" 0.0 x.(0).Complex.im;
        checkf 1e-12 "x1 re" 1.0 x.(1).Complex.re);
    Alcotest.test_case "raises on singular" `Quick (fun () ->
        let a = [| [| Complex.one; Complex.one |]; [| Complex.one; Complex.one |] |] in
        match Sim.Clu.solve_copy a [| Complex.one; Complex.one |] with
        | exception Sim.Clu.Singular _ -> ()
        | _ -> Alcotest.fail "expected Singular");
  ]

let rc_lowpass =
  parse "rc lowpass\nVIN in 0 DC 0\nR1 in out 1k\nC1 out 0 159.155n\n.end\n"
(* corner = 1/(2 pi R C) = 1 kHz *)

let ac_tests =
  [
    Alcotest.test_case "rc lowpass magnitude and corner" `Quick (fun () ->
        let freqs = Sim.Spectrum.log_grid ~f_start:1.0 ~f_stop:1e6 ~per_decade:20 in
        let sp = Compat.ac rc_lowpass ~source:"VIN" ~freqs in
        let mag = Sim.Spectrum.magnitude_db sp "out" in
        checkf 0.01 "dc gain" 0.0 mag.(0);
        (match Sim.Spectrum.corner_frequency sp "out" with
        | Some f -> checkf 30.0 "corner" 1000.0 f
        | None -> Alcotest.fail "no corner");
        (* well above the corner the analytic first-order magnitude must
           hold at every grid point *)
        let freqs = Sim.Spectrum.frequencies sp in
        Array.iteri
          (fun i f ->
            if f >= 1e4 then begin
              let expect = -10.0 *. log10 (1.0 +. ((f /. 1000.0) ** 2.0)) in
              checkf 0.1 (Printf.sprintf "mag at %.0f" f) expect mag.(i)
            end)
          freqs);
    Alcotest.test_case "rc lowpass phase approaches -90" `Quick (fun () ->
        let freqs = Sim.Spectrum.log_grid ~f_start:1.0 ~f_stop:1e6 ~per_decade:10 in
        let sp = Compat.ac rc_lowpass ~source:"VIN" ~freqs in
        let ph = Sim.Spectrum.phase_deg sp "out" in
        checkf 2.0 "dc phase" 0.0 ph.(0);
        checkf 3.0 "hf phase" (-90.0) ph.(Array.length ph - 1));
    Alcotest.test_case "other sources are quenched" `Quick (fun () ->
        let c =
          parse "t\nVIN in 0 DC 0\nVOFF x 0 5\nR1 in out 1k\nR2 out x 1k\n.end\n"
        in
        let sp = Compat.ac c ~source:"VIN" ~freqs:[ 1e3 ] in
        (* VOFF acts as ground: out = in / 2. *)
        checkf 1e-9 "divider" 0.5 (Complex.norm (Sim.Spectrum.phasor sp "out" 0)));
    Alcotest.test_case "unknown source rejected" `Quick (fun () ->
        match Compat.ac rc_lowpass ~source:"VBOGUS" ~freqs:[ 1e3 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "mos amplifier inverts and amplifies" `Quick (fun () ->
        let c =
          parse
            ("amp\nVDD vdd 0 5\nVIN gate 0 DC 1.3\nRD vdd out 20k\n"
           ^ "M1 out gate 0 0 NM W=20u L=1u\n.model NM NMOS VTO=0.8 KP=60u LAMBDA=0.02\n.end\n")
        in
        let sp = Compat.ac c ~source:"VIN" ~freqs:[ 100.0 ] in
        let h = Sim.Spectrum.phasor sp "out" 0 in
        check_bool "gain > 3" true (Complex.norm h > 3.0);
        checkf 5.0 "inverting" 180.0 (Float.abs (Complex.arg h *. 180.0 /. Float.pi)));
    Alcotest.test_case "log grid covers the requested span" `Quick (fun () ->
        let g = Sim.Spectrum.log_grid ~f_start:10.0 ~f_stop:1e4 ~per_decade:10 in
        checkf 1e-9 "start" 10.0 (List.hd g);
        checkf 1e-6 "stop" 1e4 (List.nth g (List.length g - 1));
        check_bool "monotone" true (List.sort compare g = g));
  ]

(* --- DC sweep --- *)

let dc_sweep_tests =
  [
    Alcotest.test_case "linear divider sweeps linearly" `Quick (fun () ->
        let c = parse "d\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n.end\n" in
        let pts =
          Compat.dc_sweep c ~source:"V1" ~values:[ 0.0; 1.0; 2.0; 4.0 ]
        in
        List.iter
          (fun (v, sol) -> checkf 1e-6 "half" (v /. 2.0) (Sim.Engine.voltage sol "out"))
          pts);
    Alcotest.test_case "nmos inverter transfer is monotone falling" `Quick (fun () ->
        let c =
          parse
            "inv\nVDD vdd 0 5\nVIN in 0 0\nRD vdd out 10k\nM1 out in 0 0 NM W=10u L=1u\n.model NM NMOS VTO=1 KP=60u\n.end\n"
        in
        let pts =
          Compat.dc_sweep c ~source:"VIN"
            ~values:(List.init 11 (fun i -> 0.5 *. float_of_int i))
        in
        let outs = List.map (fun (_, s) -> Sim.Engine.voltage s "out") pts in
        let rec falling = function
          | a :: (b :: _ as rest) -> b <= a +. 1e-9 && falling rest
          | _ -> true
        in
        check_bool "monotone" true (falling outs);
        checkf 1e-3 "starts high" 5.0 (List.hd outs);
        check_bool "ends low" true (List.nth outs 10 < 0.5));
    Alcotest.test_case "unknown source rejected" `Quick (fun () ->
        let c = parse "d\nV1 a 0 1\nR1 a 0 1k\n.end\n" in
        match Compat.dc_sweep c ~source:"R1" ~values:[ 1.0 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* --- AC fault simulation --- *)

let ac_sim_tests =
  [
    Alcotest.test_case "lowpass faults detected, nominal silent" `Quick (fun () ->
        let config =
          { (Anafault.Ac_sim.default_config ~source:"VIN" ~observed:"out") with
            freqs = Sim.Spectrum.log_grid ~f_start:10.0 ~f_stop:1e6 ~per_decade:5 }
        in
        let faults = Faults.Universe.build rc_lowpass in
        let run = Anafault.Ac_sim.run config rc_lowpass faults in
        let d, _, f = Anafault.Ac_sim.tally run in
        check_int "no failures" 0 f;
        (* R1 short, R1 open, C1 short, C1 open all bend the response. *)
        check_bool "most detected" true (d >= 3));
    Alcotest.test_case "capacitor open shifts only high frequencies" `Quick (fun () ->
        let config =
          { (Anafault.Ac_sim.default_config ~source:"VIN" ~observed:"out") with
            freqs = Sim.Spectrum.log_grid ~f_start:10.0 ~f_stop:1e6 ~per_decade:5 }
        in
        let cap_open =
          Faults.Fault.make ~id:"#c"
            ~kind:(Faults.Fault.Break
                     { net = "out"; moved = [ { Faults.Fault.device = "C1"; port = 0 } ] })
            ~mechanism:"m" ()
        in
        let run = Anafault.Ac_sim.run config rc_lowpass [ cap_open ] in
        match run.Anafault.Ac_sim.results with
        | [ { outcome = Anafault.Ac_sim.Detected f; _ } ] ->
          check_bool "above the corner" true (f > 500.0)
        | _ -> Alcotest.fail "expected detection");
  ]

(* --- test preparation + diagnosis --- *)

let small_inverter =
  parse
    ("inv\nVDD vdd 0 5\nVIN in 0 PULSE(0 5 0 10n 10n 1u 2u)\nRD vdd out 10k\n"
   ^ "M1 out in 0 0 NM W=20u L=1u\n.model NM NMOS VTO=1 KP=60u\n.end\n")

let small_tran = { Netlist.Parser.tstep = 10e-9; tstop = 4e-6; uic = true }

let small_config = Anafault.Simulate.default_config ~tran:small_tran ~observed:"out" ()

let small_faults =
  [
    Faults.Fault.make ~id:"#1"
      ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "vdd" })
      ~mechanism:"metal1_short" ~prob:1e-7 ();
    Faults.Fault.make ~id:"#2"
      ~kind:(Faults.Fault.Break
               { net = "in"; moved = [ { Faults.Fault.device = "M1"; port = 1 } ] })
      ~mechanism:"poly_open" ~prob:1e-8 ();
  ]

let testprep_tests =
  [
    Alcotest.test_case "candidates ranked by weighted coverage" `Quick (fun () ->
        let keep = { Anafault.Testprep.label = "as-is"; prepare = Fun.id; config = small_config } in
        let dead_input =
          { Anafault.Testprep.label = "input grounded";
            prepare =
              (fun c ->
                match Netlist.Circuit.find c "VIN" with
                | Some (Netlist.Device.V v) ->
                  Netlist.Circuit.replace c
                    (Netlist.Device.V { v with wave = Netlist.Wave.Dc 0.0 })
                | Some _ | None -> c);
            config = small_config }
        in
        let verdicts =
          Anafault.Testprep.compare small_inverter small_faults [ dead_input; keep ]
        in
        (match verdicts with
        | best :: _ ->
          Alcotest.(check string) "pulse wins" "as-is"
            best.Anafault.Testprep.candidate.Anafault.Testprep.label
        | [] -> Alcotest.fail "no verdicts");
        check_bool "table renders" true
          (String.length (Format.asprintf "%a" Anafault.Testprep.pp_table verdicts) > 0));
    Alcotest.test_case "verdict coverage consistent with its run" `Quick (fun () ->
        let keep = { Anafault.Testprep.label = "as-is"; prepare = Fun.id; config = small_config } in
        match Anafault.Testprep.compare small_inverter small_faults [ keep ] with
        | [ v ] ->
          checkf 1e-9 "match" v.Anafault.Testprep.coverage
            (Anafault.Coverage.final_percent v.Anafault.Testprep.run)
        | _ -> Alcotest.fail "expected one verdict");
  ]

let diagnose_tests =
  [
    Alcotest.test_case "identifies the injected fault" `Quick (fun () ->
        let dict = Anafault.Diagnose.build small_config small_inverter small_faults in
        check_int "signatures" 2 (Anafault.Diagnose.fault_count dict);
        let culprit = List.nth small_faults 1 in
        let measured =
          (* Same fault model the dictionary was built with. *)
          Compat.transient
            (Faults.Inject.apply ~model:small_config.Anafault.Simulate.model
               small_inverter culprit)
            ~tstep:10e-9 ~tstop:4e-6 ~uic:true
        in
        match Anafault.Diagnose.diagnose dict measured with
        | Some (f, d) ->
          Alcotest.(check string) "culprit" "#2" f.Faults.Fault.id;
          check_bool "close" true (d < 0.5)
        | None -> Alcotest.fail "no diagnosis");
    Alcotest.test_case "good die is far from every signature" `Quick (fun () ->
        let dict = Anafault.Diagnose.build small_config small_inverter small_faults in
        let good = Compat.transient small_inverter ~tstep:10e-9 ~tstop:4e-6 ~uic:true in
        checkf 0.05 "nominal distance" 0.0 (Anafault.Diagnose.nominal_distance dict good);
        match Anafault.Diagnose.rank dict good with
        | (_, d) :: _ -> check_bool "far" true (d > 1.0)
        | [] -> Alcotest.fail "empty rank");
  ]

(* --- row-floorplan layout synthesis --- *)

let synth_qcheck =
  let open QCheck in
  (* Random MOS+C circuits over a small net alphabet: the synthesizer
     must always produce a DRC-clean mask whose extraction is
     LVS-identical to the schematic. *)
  let nets = [ "0"; "vdd"; "a"; "b"; "c"; "d" ] in
  let net = Gen.oneofl nets in
  let mos_gen i =
    Gen.map
      (fun (kind, (d, g, s), w_um, l_um) ->
        let model, bulk =
          match kind with
          | `N -> (Netlist.Device.default_nmos, "0")
          | `P -> (Netlist.Device.default_pmos, "vdd")
        in
        Netlist.Device.M
          { name = Printf.sprintf "M%d" (i + 1); d; g; s; b = bulk; model;
            w = float_of_int w_um *. 1e-6; l = float_of_int l_um *. 1e-6 })
      Gen.(quad (oneofl [ `N; `P ]) (triple net net net) (int_range 2 50) (int_range 1 3))
  in
  let circuit_gen =
    Gen.(
      int_range 1 6 >>= fun n ->
      let rec devs i acc =
        if i >= n then acc
        else devs (i + 1) (map2 (fun l d -> d :: l) acc (mos_gen i))
      in
      map2
        (fun devices (n1, n2) ->
          let devices =
            if n1 <> n2 then
              devices
              @ [ Netlist.Device.C { name = "C1"; n1; n2; value = 5e-12; ic = None } ]
            else devices
          in
          Netlist.Circuit.of_devices "random" devices)
        (devs 0 (return []))
        (pair net net))
  in
  let print_circuit c = Format.asprintf "%a" Netlist.Circuit.pp c in
  [
    Test.make ~name:"synthesised layouts are DRC-clean and LVS-exact" ~count:25
      (make ~print:print_circuit circuit_gen)
      (fun circuit ->
        let mask = Synth.Row_synth.mask circuit in
        let drc = Layout.Drc.check mask in
        let options =
          { Extract.Extractor.default_options with
            nmos_bulk = "0"; pmos_bulk = "vdd";
            cap_per_nm2 = Synth.Row_synth.default_cap_per_nm2 }
        in
        let ext = Extract.Extractor.extract ~options mask in
        let lvs =
          Extract.Compare.run ~golden:circuit
            ~extracted:ext.Extract.Extraction.circuit ()
        in
        drc = [] && lvs = []);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ("faults.fault_list", fault_list_tests);
    ("defects.l2rfm", l2rfm_tests);
    ("defects.monte_carlo", monte_carlo_tests);
    ("defects.yield", yield_tests);
    ("layout.svg", svg_tests);
    ("sim.clu", clu_tests);
    ("sim.ac", ac_tests);
    ("sim.dc_sweep", dc_sweep_tests);
    ("anafault.ac_sim", ac_sim_tests);
    ("synth.properties", synth_qcheck);
    ("anafault.testprep", testprep_tests);
    ("anafault.diagnose", diagnose_tests);
  ]
