(* The staged pipeline's contract: byte-identical to the serial
   [Extractor.extract |> Lift.run] whatever the tile size, domain count
   or cache state - and after a one-tile edit, a cached re-run
   recomputes only the dirty tile. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let temp_dir () =
  let dir = Filename.temp_file "liftpipe" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

(* The serial reference: ranked fault-list text straight through the
   monolithic path. *)
let serial_text ?(options = Defects.Lift.default_options) mask =
  let ext = Extract.Extractor.extract mask in
  let result = Defects.Lift.run ~options ext in
  Faults.Fault_list.to_string (Defects.Lift.ranked result)

let pipeline_run ?(tile = Synth.Layout_synth.cell_pitch_nm) ?(domains = 1)
    ?cache ?(options = Defects.Lift.default_options) mask =
  let config =
    { Defects.Pipeline.tile_nm = tile; domains; cache_dir = cache;
      obs = Obs.null; options }
  in
  Defects.Pipeline.run ~config mask

let pipeline_text ?tile ?domains ?cache ?options mask =
  let { Defects.Pipeline.result; _ } =
    pipeline_run ?tile ?domains ?cache ?options mask
  in
  Faults.Fault_list.to_string (Defects.Lift.ranked result)

let tiling_tests =
  let open Geom in
  [
    Alcotest.test_case "count and clipped high row" `Quick (fun () ->
        let t = Tiling.create ~tile_nm:10 (Rect.make 0 0 25 15) in
        check_int "count" (3 * 2) (Tiling.count t);
        (* High row/column cells are clipped to the box. *)
        check_bool "clipped" true
          (Rect.equal (Tiling.rect t (Tiling.count t - 1)) (Rect.make 20 10 25 15)));
    Alcotest.test_case "tile_nm <= 0 is one tile" `Quick (fun () ->
        let box = Rect.make (-5) (-5) 100 40 in
        let t = Tiling.create ~tile_nm:0 box in
        check_int "count" 1 (Tiling.count t);
        check_bool "cell is box" true (Rect.equal (Tiling.rect t 0) box));
    Alcotest.test_case "owner partitions the box" `Quick (fun () ->
        let t = Tiling.create ~tile_nm:7 (Rect.make 0 0 20 20) in
        (* Every point owned by exactly one tile, and that tile's cell
           contains the point (half-open, so strictly inside works). *)
        for x = 0 to 19 do
          for y = 0 to 19 do
            let i = Tiling.owner t ~x ~y in
            let r = Tiling.rect t i in
            check_bool "inside" true
              Geom.Rect.(x >= r.x0 && x < r.x1 && y >= r.y0 && y < r.y1)
          done
        done;
        (* Points outside clamp to border tiles - owner stays total. *)
        check_int "clamp low" (Tiling.owner t ~x:0 ~y:0)
          (Tiling.owner t ~x:(-100) ~y:(-100)));
    Alcotest.test_case "covering lists exactly the watching windows" `Quick
      (fun () ->
        let t = Tiling.create ~tile_nm:10 (Rect.make 0 0 30 30) in
        let margin = 3 in
        let r = Rect.make 11 11 12 12 in
        let cov = Tiling.covering t ~margin r in
        List.iter
          (fun i ->
            check_bool "touches window" true
              (Rect.touches (Tiling.window t ~margin i) r))
          cov;
        (* Near a cell corner, all four neighbouring windows reach it. *)
        check_int "corner watchers" 4 (List.length cov);
        (* A shape deeper than margin inside one cell is seen by that
           cell alone. *)
        let deep = Rect.make 14 14 16 16 in
        check_bool "single watcher" true
          (Tiling.covering t ~margin deep = [ Tiling.owner t ~x:14 ~y:14 ]));
  ]

let pool_tests =
  [
    Alcotest.test_case "map is Array.init whatever the width" `Quick (fun () ->
        let f i = (i * 7) mod 13 in
        let expect = Array.init 100 f in
        List.iter
          (fun domains ->
            check_bool "same" true (Defects.Pool.map ~domains f 100 = expect))
          [ 1; 2; 4 ]);
    Alcotest.test_case "map n=0" `Quick (fun () ->
        check_int "empty" 0 (Array.length (Defects.Pool.map ~domains:4 Fun.id 0)));
    Alcotest.test_case "exceptions re-raised after join" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore
               (Defects.Pool.map ~domains:2
                  (fun i -> if i = 17 then failwith "boom" else i)
                  64);
             false
           with Failure msg -> msg = "boom"));
  ]

let parity_tests =
  [
    Alcotest.test_case "vco array: tiled+parallel equals serial" `Quick
      (fun () ->
        let mask = Synth.Layout_synth.vco_array ~rows:2 ~cols:3 () in
        let reference = serial_text mask in
        check_str "tile=pitch" reference (pipeline_text mask);
        check_str "domains=2" reference (pipeline_text ~domains:2 mask);
        (* An unaligned tile size must not change a byte either. *)
        check_str "tile=27um" reference (pipeline_text ~tile:27_000 mask);
        check_str "one tile" reference (pipeline_text ~tile:0 mask));
    Alcotest.test_case "mesh: tiled equals serial" `Quick (fun () ->
        let mask = Synth.Layout_synth.mesh ~rows:6 ~cols:6 () in
        let reference = serial_text mask in
        check_str "tiled" reference (pipeline_text ~tile:25_000 ~domains:2 mask));
    Alcotest.test_case "options thread through" `Quick (fun () ->
        let mask = Synth.Layout_synth.vco_array ~rows:1 ~cols:2 () in
        let tech = Layout.Tech.default in
        let options =
          {
            Defects.Lift.pdf =
              Some
                (Geom.Critical_area.Uniform
                   {
                     x_min = float_of_int tech.Layout.Tech.defect_x_min;
                     x_max = float_of_int tech.Layout.Tech.defect_x_max;
                   });
            p_min = 1e-9;
            merge_equivalent = false;
          }
        in
        check_str "uniform pdf" (serial_text ~options mask)
          (pipeline_text ~options mask));
  ]

let all_cached c =
  let open Defects.Pipeline in
  c.connectivity.computed = 0 && c.sites.computed = 0
  && c.critical_area.computed = 0
  && c.connectivity.cached = c.tiles
  && c.sites.cached = c.tiles
  && c.critical_area.cached = c.tiles

let cache_tests =
  [
    Alcotest.test_case "second run is a 100% cache hit" `Quick (fun () ->
        let mask = Synth.Layout_synth.vco_array ~rows:2 ~cols:2 () in
        let cache = Some (temp_dir ()) in
        let cold = pipeline_run ?cache mask in
        let open Defects.Pipeline in
        check_int "cold computes all" cold.counters.tiles
          cold.counters.connectivity.computed;
        check_int "cold hits none" 0 cold.counters.connectivity.cached;
        let warm = pipeline_run ?cache mask in
        check_bool "warm all cached" true (all_cached warm.counters);
        check_str "same bytes"
          (Faults.Fault_list.to_string (Defects.Lift.ranked cold.result))
          (Faults.Fault_list.to_string (Defects.Lift.ranked warm.result)));
    Alcotest.test_case "one-tile edit recomputes only the dirty tile" `Quick
      (fun () ->
        let cache = Some (temp_dir ()) in
        let base = Synth.Layout_synth.vco_array ~rows:2 ~cols:2 () in
        ignore (pipeline_run ?cache base);
        let edited = Synth.Layout_synth.vco_array ~rows:2 ~cols:2 ~nudge:(1, 1) () in
        let incr = pipeline_run ?cache edited in
        let open Defects.Pipeline in
        let c = incr.counters in
        (* The nudged strap lives deeper than the margin inside cell
           (1,1): every stage recomputes that tile and no other.  (The
           grid anchors on the layout hull, so the tile count exceeds
           the 2x2 cell count - the dirty-tile count must not.) *)
        check_int "conn computed" 1 c.connectivity.computed;
        check_int "conn cached" (c.tiles - 1) c.connectivity.cached;
        check_int "sites computed" 1 c.sites.computed;
        check_int "sites cached" (c.tiles - 1) c.sites.cached;
        check_int "ca computed" 1 c.critical_area.computed;
        check_int "ca cached" (c.tiles - 1) c.critical_area.cached;
        (* And the incremental answer matches a cold serial run of the
           edited layout, byte for byte. *)
        check_str "parity" (serial_text edited)
          (Faults.Fault_list.to_string (Defects.Lift.ranked incr.result)));
    Alcotest.test_case "corrupt artefact is a miss, not an error" `Quick
      (fun () ->
        let dir = temp_dir () in
        let mask = Synth.Layout_synth.vco_array ~rows:1 ~cols:2 () in
        ignore (pipeline_run ~cache:dir mask);
        (* Truncate every stored artefact; the pipeline must fall back
           to recomputing and still produce the right bytes. *)
        let rec clobber d =
          Array.iter
            (fun name ->
              let path = Filename.concat d name in
              if Sys.is_directory path then clobber path
              else begin
                let oc = open_out path in
                output_string oc "torn";
                close_out oc
              end)
            (Sys.readdir d)
        in
        clobber dir;
        let redo = pipeline_run ~cache:dir mask in
        check_int "recomputed" 0 redo.Defects.Pipeline.counters.Defects.Pipeline.connectivity.Defects.Pipeline.cached;
        check_str "parity" (serial_text mask)
          (Faults.Fault_list.to_string
             (Defects.Lift.ranked redo.Defects.Pipeline.result)));
  ]

let ranked_tests =
  [
    Alcotest.test_case "ranked is a total order" `Quick (fun () ->
        let mask = Synth.Layout_synth.vco_array ~rows:2 ~cols:2 () in
        let ext = Extract.Extractor.extract mask in
        let result = Defects.Lift.run ext in
        let ranked = Defects.Lift.ranked result in
        check_int "same population" (List.length result.Defects.Lift.faults)
          (List.length ranked);
        (* Probability descending... *)
        let rec desc = function
          | a :: (b :: _ as rest) ->
            Faults.Fault.(a.prob >= b.prob) && desc rest
          | _ -> true
        in
        check_bool "prob desc" true (desc ranked);
        (* ...and reversing the input changes nothing: ties are broken
           by fault class and site id, never by input order. *)
        let rev =
          Defects.Lift.ranked
            { result with Defects.Lift.faults = List.rev result.Defects.Lift.faults }
        in
        check_bool "input-order free" true (ranked = rev));
  ]

let suites =
  [
    ("pipeline.tiling", tiling_tests);
    ("pipeline.pool", pool_tests);
    ("pipeline.parity", parity_tests);
    ("pipeline.cache", cache_tests);
    ("pipeline.ranked", ranked_tests);
  ]
