(* Tests for the first-class Campaign API and the anafaultd service:
   JSON codec round-trips (options, specs, events, results), the pinned
   campaign fingerprint, the unified failure string codec, shard /
   journal-merge equivalence with an unsharded run, and an in-process
   daemon submit / cache-hit round trip. *)

module Campaign = Anafault.Campaign
module Journal = Anafault.Journal
module Outcome = Anafault.Outcome
module Protocol = Anafaultd.Protocol
module J = Obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* The NMOS-inverter campaign of test_anafault, with the .tran card in
   the deck so the whole campaign travels as one spec. *)
let deck_text =
  "inv\nVDD vdd 0 5\nVIN in 0 PULSE(0 5 0 10n 10n 1u 2u)\nRD vdd out 10k\n"
  ^ "M1 out in 0 0 NM W=20u L=1u\n.model NM NMOS VTO=1 KP=60u\n"
  ^ ".tran 10n 4u UIC\n.end\n"

let fixture_faults =
  [
    Faults.Fault.make ~id:"#1"
      ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "vdd" })
      ~mechanism:"metal1_short" ~prob:1e-7 ();
    Faults.Fault.make ~id:"#2"
      ~kind:
        (Faults.Fault.Break
           {
             net = "in";
             moved = [ { Faults.Fault.device = "M1"; port = 1 } ];
           })
      ~mechanism:"poly_open" ~prob:1e-8 ();
    (* Shorting out to itself - no electrical change, never detected. *)
    Faults.Fault.make ~id:"#3"
      ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "out" })
      ~mechanism:"metal1_short" ~prob:1e-9 ();
  ]

let spec =
  {
    Campaign.deck = deck_text;
    observed = Some "out";
    faults = Faults.Fault_list.to_string fixture_faults;
    options = Campaign.default_options;
  }

let compile () = ok "compile" (Campaign.compile spec)

let fault_array () = Array.of_list (compile ()).Campaign.faults

let temp_path suffix =
  let path = Filename.temp_file "campaign" suffix in
  Sys.remove path;
  path

(* --- Codec round trips ------------------------------------------------- *)

let codec_tests =
  [
    Alcotest.test_case "default options round-trip" `Quick (fun () ->
        let opts = Campaign.default_options in
        let back =
          ok "options_of_json" (Campaign.options_of_json (Campaign.options_to_json opts))
        in
        check_bool "equal" true (back = opts));
    Alcotest.test_case "CLI-built options round-trip" `Quick (fun () ->
        let opts =
          ok "options_of_cli"
            (Campaign.options_of_cli ~model:"resistor" ~solver:"sparse"
               ~tol_v:1.5 ~tol_t:0.3e-6 ~retries:"swap-model,cut-tstep=0.25"
               ~samples:200 ~domains:3 ~batch:4 ~budget_iters:1000
               ~budget_steps:5000 ~budget_seconds:2.5 ())
        in
        let back =
          ok "options_of_json" (Campaign.options_of_json (Campaign.options_to_json opts))
        in
        check_bool "equal" true (back = opts);
        check_int "domains" 3 back.Campaign.domains;
        check_bool "resistor model" true
          (match back.Campaign.model with
          | Faults.Inject.Resistor _ -> true
          | Faults.Inject.Source -> false));
    Alcotest.test_case "options_of_cli rejects bad input" `Quick (fun () ->
        check_bool "bad model" true
          (Result.is_error (Campaign.options_of_cli ~model:"wires" ()));
        check_bool "bad solver" true
          (Result.is_error (Campaign.options_of_cli ~solver:"quantum" ()));
        check_bool "bad retries" true
          (Result.is_error (Campaign.options_of_cli ~retries:"warp-time" ())));
    Alcotest.test_case "missing options fields take defaults" `Quick (fun () ->
        let back = ok "options_of_json" (Campaign.options_of_json (J.Obj [])) in
        check_bool "defaults" true (back = Campaign.default_options));
    Alcotest.test_case "config round-trips through options" `Quick (fun () ->
        let compiled = compile () in
        let opts = Campaign.options_of_config compiled.Campaign.config in
        check_bool "projects back" true (opts = spec.Campaign.options));
    Alcotest.test_case "spec round-trip (explicit observed)" `Quick (fun () ->
        let back = ok "spec_of_json" (Campaign.spec_of_json (Campaign.spec_to_json spec)) in
        check_bool "equal" true (back = spec));
    Alcotest.test_case "spec round-trip (default observed)" `Quick (fun () ->
        let s = { spec with Campaign.observed = None } in
        let back = ok "spec_of_json" (Campaign.spec_of_json (Campaign.spec_to_json s)) in
        check_bool "equal" true (back = s));
    Alcotest.test_case "request round-trip" `Quick (fun () ->
        List.iter
          (fun req ->
            let back =
              ok "request_of_json" (Protocol.request_of_json (Protocol.request_to_json req))
            in
            check_bool "equal" true (back = req))
          [ Protocol.Submit spec; Protocol.Stats; Protocol.Ping; Protocol.Shutdown ]);
    Alcotest.test_case "event round-trips" `Quick (fun () ->
        let faults = fault_array () in
        List.iter
          (fun ev ->
            let back =
              ok "event_of_json" (Campaign.event_of_json ~faults (Campaign.event_to_json ev))
            in
            check_bool "equal" true (back = ev))
          [
            Campaign.Accepted { fingerprint = "abc123"; total = 3 };
            Campaign.Progress { completed = 1; total = 3 };
            Campaign.Cache_hit { fingerprint = "abc123" };
            Campaign.Sharded { shards = 4 };
            Campaign.Failed { message = "no such node" };
          ]);
    Alcotest.test_case "campaign result round-trips" `Quick (fun () ->
        let compiled = compile () in
        let { Campaign.result; _ } = Campaign.run_local compiled in
        let faults = fault_array () in
        let back =
          ok "result_of_json" (Campaign.result_of_json ~faults (Campaign.result_to_json result))
        in
        check_string "fingerprint" result.Campaign.fingerprint back.Campaign.fingerprint;
        check_int "total" result.Campaign.total back.Campaign.total;
        check_bool "wall clock survives" true
          (back.Campaign.wall_seconds = result.Campaign.wall_seconds);
        check_string "same detection table"
          (Anafault.Report.csv_of_results result.Campaign.results)
          (Anafault.Report.csv_of_results back.Campaign.results);
        let d, u, f = Campaign.tally back in
        check_int "detected" 2 d;
        check_int "undetected" 1 u;
        check_int "failed" 0 f);
  ]

(* --- Fingerprint pinning ----------------------------------------------- *)

(* The campaign fingerprint is the content address of every cache entry
   and journal; silent drift would orphan them all.  This golden value
   may only change with a deliberate fingerprint-format bump. *)
let pinned_fingerprint = "90ab90579a2ba02d2ee8cc968aa5ab1b"

let fingerprint_tests =
  [
    Alcotest.test_case "compiled fingerprint matches the pinned golden" `Quick
      (fun () ->
        check_string "fingerprint" pinned_fingerprint
          (compile ()).Campaign.fingerprint);
    Alcotest.test_case "fingerprint ignores schedule knobs" `Quick (fun () ->
        let wide =
          {
            spec with
            Campaign.options =
              { spec.Campaign.options with Campaign.domains = 7; batch = 5 };
          }
        in
        check_string "same" pinned_fingerprint
          (ok "compile" (Campaign.compile wide)).Campaign.fingerprint);
    Alcotest.test_case "fingerprint tracks electrical options" `Quick (fun () ->
        let tighter =
          {
            spec with
            Campaign.options =
              {
                spec.Campaign.options with
                Campaign.tolerance = { Anafault.Detect.tol_v = 0.5; tol_t = 1e-7 };
              };
          }
        in
        check_bool "different" true
          ((ok "compile" (Campaign.compile tighter)).Campaign.fingerprint
          <> pinned_fingerprint));
  ]

(* --- Compile validation ------------------------------------------------ *)

let compile_tests =
  [
    Alcotest.test_case "missing .tran is an error" `Quick (fun () ->
        let without line text =
          String.split_on_char '\n' text
          |> List.filter (fun l -> l <> line)
          |> String.concat "\n"
        in
        let s = { spec with Campaign.deck = without ".tran 10n 4u UIC" deck_text } in
        check_bool "error" true (Result.is_error (Campaign.compile s)));
    Alcotest.test_case "unknown observed node is an error" `Quick (fun () ->
        let s = { spec with Campaign.observed = Some "ghost" } in
        check_bool "error" true (Result.is_error (Campaign.compile s)));
    Alcotest.test_case "garbage deck is an error, not an exception" `Quick (fun () ->
        let s = { spec with Campaign.deck = "inv\nQQ what is this\n.end\n" } in
        check_bool "error" true (Result.is_error (Campaign.compile s)));
    Alcotest.test_case "garbage fault list is an error, not an exception" `Quick
      (fun () ->
        let s = { spec with Campaign.faults = "#1 blah BLAH x y\n" } in
        check_bool "error" true (Result.is_error (Campaign.compile s)));
  ]

(* --- Failure string codec ---------------------------------------------- *)

let failure_tests =
  [
    Alcotest.test_case "failure strings round-trip" `Quick (fun () ->
        List.iter
          (fun failure ->
            let s = Outcome.failure_to_string failure in
            match Outcome.failure_of_string s with
            | Error msg -> Alcotest.failf "%s: %s" s msg
            | Ok back -> check_bool s true (back = failure))
          [
            Outcome.Dc_no_convergence "";
            Outcome.Dc_no_convergence "dc failed at t=0";
            Outcome.Tran_step_underflow "h=1e-21";
            Outcome.Singular_matrix "pivot 3";
            Outcome.Bad_injection "no device M9";
            Outcome.Budget_exceeded "1000 iterations";
            Outcome.Crashed "Stack_overflow";
          ]);
    Alcotest.test_case "detail with colons survives" `Quick (fun () ->
        let f = Outcome.Crashed "Failure: nested: detail" in
        check_bool "round trip" true
          (Outcome.failure_of_string (Outcome.failure_to_string f) = Ok f));
    Alcotest.test_case "unknown kind is an error" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Outcome.failure_of_string "gremlins: in the matrix")));
  ]

(* --- Sharding and journal merge ---------------------------------------- *)

let shard_tests =
  [
    Alcotest.test_case "shard strings round-trip" `Quick (fun () ->
        check_string "print" "1/4" (Campaign.shard_to_string (1, 4));
        check_bool "parse" true (Campaign.shard_of_string "1/4" = Ok (1, 4));
        check_bool "reject shape" true (Result.is_error (Campaign.shard_of_string "3"));
        check_bool "reject range" true
          (Result.is_error (Campaign.shard_of_string "4/4"));
        check_bool "reject zero" true
          (Result.is_error (Campaign.shard_of_string "0/0")));
    Alcotest.test_case "shard indices partition the campaign" `Quick (fun () ->
        let total = 11 in
        List.iter
          (fun count ->
            let slices =
              List.init count (fun index ->
                  Campaign.shard_indices ~shard:(index, count) ~total)
            in
            let all = List.sort compare (List.concat slices) in
            check_bool
              (Printf.sprintf "%d-way partition" count)
              true
              (all = List.init total Fun.id))
          [ 1; 2; 4 ]);
    Alcotest.test_case "sharded journals merge into the unsharded campaign" `Slow
      (fun () ->
        let compiled = compile () in
        let faults = fault_array () in
        let total = Array.length faults in
        (* The unsharded reference: run locally, keep the detection CSV. *)
        let { Campaign.result = serial; _ } = Campaign.run_local compiled in
        let serial_csv = Anafault.Report.csv_of_results serial.Campaign.results in
        List.iter
          (fun count ->
            let label = Printf.sprintf "%d-way" count in
            let shard_paths =
              List.init count (fun i -> temp_path (Printf.sprintf ".shard%d" i))
            in
            List.iteri
              (fun i path ->
                let simulated =
                  ok (label ^ " run_shard")
                    (Campaign.run_shard ~journal_path:path ~shard:(i, count)
                       compiled)
                in
                check_int
                  (Printf.sprintf "%s shard %d simulates its slice" label i)
                  (List.length
                     (Campaign.shard_indices ~shard:(i, count) ~total))
                  simulated)
              shard_paths;
            let merged_path = temp_path ".merged" in
            let merged_count =
              ok (label ^ " merge")
                (Journal.merge ~out:merged_path
                   ~fingerprint:compiled.Campaign.fingerprint ~faults
                   shard_paths)
            in
            check_int (label ^ " merge holds every fault") total merged_count;
            (* Interchangeable with a serial journal: resuming the
               unsharded campaign from it restores everything - zero
               faults left to simulate. *)
            let journal =
              ok (label ^ " reopen")
                (Journal.start ~path:merged_path
                   ~fingerprint:compiled.Campaign.fingerprint ~resume:true
                   ~faults)
            in
            check_int (label ^ " fully restored") total
              (Journal.restored_count journal);
            let merged_result =
              ok (label ^ " result_of_journal")
                (Campaign.result_of_journal compiled journal)
            in
            Journal.close journal;
            (* Byte-identical detection table. *)
            check_string (label ^ " detection CSV") serial_csv
              (Anafault.Report.csv_of_results merged_result.Campaign.results);
            List.iter Sys.remove shard_paths;
            Sys.remove merged_path)
          [ 1; 2; 4 ]);
  ]

(* --- The daemon, in process -------------------------------------------- *)

let daemon_socket_dir () =
  (* sun_path is ~108 chars; build a short path under the system temp
     dir rather than anywhere near _build. *)
  let dir = Filename.temp_file "anafd" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec try_connect attempts =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ when attempts > 0 ->
      Thread.delay 0.05;
      try_connect (attempts - 1)
  in
  try_connect 100

let drain_events ~faults ic =
  let rec loop acc =
    match ok "recv" (Protocol.recv ic) with
    | None -> Alcotest.fail "daemon closed the stream early"
    | Some json -> begin
      match ok "event" (Campaign.event_of_json ~faults json) with
      | (Campaign.Finished _ | Campaign.Failed _) as ev -> List.rev (ev :: acc)
      | ev -> loop (ev :: acc)
    end
  in
  loop []

let submit_and_wait ~faults path =
  let fd = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Protocol.send oc (Protocol.request_to_json (Protocol.Submit spec));
  drain_events ~faults ic

let one_shot path request =
  let fd = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Protocol.send oc (Protocol.request_to_json request);
  match ok "recv" (Protocol.recv ic) with
  | Some json -> json
  | None -> Alcotest.fail "daemon closed the connection without replying"

let daemon_tests =
  [
    Alcotest.test_case "submit, cache hit, stats, shutdown" `Slow (fun () ->
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        let cfg =
          Anafaultd.Server.default_config ~socket_path
            ~work_dir:(Filename.concat dir "work")
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let faults = fault_array () in
        (* First submission simulates. *)
        let events = submit_and_wait ~faults socket_path in
        let finished = function
          | Campaign.Finished r -> Some r
          | _ -> None
        in
        let first =
          match List.filter_map finished events with
          | [ r ] -> r
          | _ -> Alcotest.fail "expected exactly one Finished event"
        in
        check_bool "first run is not cached" false first.Campaign.cached;
        check_bool "accepted preceded it" true
          (List.exists (function Campaign.Accepted _ -> true | _ -> false) events);
        (* Second submission of the same spec is served from the cache. *)
        let events2 = submit_and_wait ~faults socket_path in
        check_bool "cache hit announced" true
          (List.exists (function Campaign.Cache_hit _ -> true | _ -> false) events2);
        let second =
          match List.filter_map finished events2 with
          | [ r ] -> r
          | _ -> Alcotest.fail "expected exactly one Finished event"
        in
        check_bool "second run is cached" true second.Campaign.cached;
        check_string "identical detection tables"
          (Anafault.Report.csv_of_results first.Campaign.results)
          (Anafault.Report.csv_of_results second.Campaign.results);
        (* Counters saw one job and one cache hit. *)
        (match one_shot socket_path Protocol.Stats with
        | J.Obj fields ->
          check_bool "one job" true (List.assoc "jobs" fields = J.Int 1);
          check_bool "one cache hit" true
            (List.assoc "cache_hits" fields = J.Int 1)
        | _ -> Alcotest.fail "stats: expected an object");
        (* Shutdown stops the server thread. *)
        (match one_shot socket_path Protocol.Shutdown with
        | J.Obj [ ("ok", J.Bool true) ] -> ()
        | _ -> Alcotest.fail "shutdown: expected ok");
        Thread.join server);
  ]

let suites =
  [
    ("campaign codecs", codec_tests);
    ("campaign fingerprint", fingerprint_tests);
    ("campaign compile", compile_tests);
    ("failure codec", failure_tests);
    ("campaign sharding", shard_tests);
    ("anafaultd", daemon_tests);
  ]
