(* Tests for the first-class Campaign API and the anafaultd service:
   JSON codec round-trips (options, specs, events, results), the pinned
   campaign fingerprint, the unified failure string codec, shard /
   journal-merge equivalence with an unsharded run, and an in-process
   daemon submit / cache-hit round trip. *)

module Campaign = Anafault.Campaign
module Journal = Anafault.Journal
module Outcome = Anafault.Outcome
module Protocol = Anafaultd.Protocol
module J = Obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* The NMOS-inverter campaign of test_anafault, with the .tran card in
   the deck so the whole campaign travels as one spec. *)
let deck_text =
  "inv\nVDD vdd 0 5\nVIN in 0 PULSE(0 5 0 10n 10n 1u 2u)\nRD vdd out 10k\n"
  ^ "M1 out in 0 0 NM W=20u L=1u\n.model NM NMOS VTO=1 KP=60u\n"
  ^ ".tran 10n 4u UIC\n.end\n"

let fixture_faults =
  [
    Faults.Fault.make ~id:"#1"
      ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "vdd" })
      ~mechanism:"metal1_short" ~prob:1e-7 ();
    Faults.Fault.make ~id:"#2"
      ~kind:
        (Faults.Fault.Break
           {
             net = "in";
             moved = [ { Faults.Fault.device = "M1"; port = 1 } ];
           })
      ~mechanism:"poly_open" ~prob:1e-8 ();
    (* Shorting out to itself - no electrical change, never detected. *)
    Faults.Fault.make ~id:"#3"
      ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "out" })
      ~mechanism:"metal1_short" ~prob:1e-9 ();
  ]

let spec =
  {
    Campaign.deck = deck_text;
    observed = Some "out";
    faults = Faults.Fault_list.to_string fixture_faults;
    options = Campaign.default_options;
  }

let compile () = ok "compile" (Campaign.compile spec)

let fault_array () = Array.of_list (compile ()).Campaign.faults

let temp_path suffix =
  let path = Filename.temp_file "campaign" suffix in
  Sys.remove path;
  path

(* --- Codec round trips ------------------------------------------------- *)

let codec_tests =
  [
    Alcotest.test_case "default options round-trip" `Quick (fun () ->
        let opts = Campaign.default_options in
        let back =
          ok "options_of_json" (Campaign.options_of_json (Campaign.options_to_json opts))
        in
        check_bool "equal" true (back = opts));
    Alcotest.test_case "CLI-built options round-trip" `Quick (fun () ->
        let opts =
          ok "options_of_cli"
            (Campaign.options_of_cli ~model:"resistor" ~solver:"sparse"
               ~tol_v:1.5 ~tol_t:0.3e-6 ~retries:"swap-model,cut-tstep=0.25"
               ~samples:200 ~domains:3 ~batch:4 ~budget_iters:1000
               ~budget_steps:5000 ~budget_seconds:2.5 ())
        in
        let back =
          ok "options_of_json" (Campaign.options_of_json (Campaign.options_to_json opts))
        in
        check_bool "equal" true (back = opts);
        check_int "domains" 3 back.Campaign.domains;
        check_bool "resistor model" true
          (match back.Campaign.model with
          | Faults.Inject.Resistor _ -> true
          | Faults.Inject.Source -> false));
    Alcotest.test_case "options_of_cli rejects bad input" `Quick (fun () ->
        check_bool "bad model" true
          (Result.is_error (Campaign.options_of_cli ~model:"wires" ()));
        check_bool "bad solver" true
          (Result.is_error (Campaign.options_of_cli ~solver:"quantum" ()));
        check_bool "bad retries" true
          (Result.is_error (Campaign.options_of_cli ~retries:"warp-time" ())));
    Alcotest.test_case "missing options fields take defaults" `Quick (fun () ->
        let back = ok "options_of_json" (Campaign.options_of_json (J.Obj [])) in
        check_bool "defaults" true (back = Campaign.default_options));
    Alcotest.test_case "config round-trips through options" `Quick (fun () ->
        let compiled = compile () in
        let opts = Campaign.options_of_config compiled.Campaign.config in
        check_bool "projects back" true (opts = spec.Campaign.options));
    Alcotest.test_case "spec round-trip (explicit observed)" `Quick (fun () ->
        let back = ok "spec_of_json" (Campaign.spec_of_json (Campaign.spec_to_json spec)) in
        check_bool "equal" true (back = spec));
    Alcotest.test_case "spec round-trip (default observed)" `Quick (fun () ->
        let s = { spec with Campaign.observed = None } in
        let back = ok "spec_of_json" (Campaign.spec_of_json (Campaign.spec_to_json s)) in
        check_bool "equal" true (back = s));
    Alcotest.test_case "request round-trip" `Quick (fun () ->
        List.iter
          (fun req ->
            let back =
              ok "request_of_json" (Protocol.request_of_json (Protocol.request_to_json req))
            in
            check_bool "equal" true (back = req))
          [
            Protocol.Submit { spec; client = None; deadline_s = None };
            Protocol.Submit { spec; client = Some "ci"; deadline_s = None };
            Protocol.Submit { spec; client = Some "ci"; deadline_s = Some 30.0 };
            (let lift =
               {
                 Protocol.layout = "tech lambda=500\n";
                 p_min = 3e-8;
                 uniform_pdf = false;
                 merge_equivalent = true;
                 tile_nm = 200_000;
               }
             in
             Protocol.Extract { lift; simulate = None; client = None; deadline_s = None });
            (let lift =
               {
                 Protocol.layout = "tech lambda=500\n";
                 p_min = 0.0;
                 uniform_pdf = true;
                 merge_equivalent = false;
                 tile_nm = 0;
               }
             in
             Protocol.Extract
               { lift; simulate = Some spec; client = Some "ci"; deadline_s = Some 9.5 });
            Protocol.Cancel { fingerprint = "abc123" };
            Protocol.Stats;
            Protocol.Ping;
            Protocol.Shutdown;
          ]);
    Alcotest.test_case "lift fingerprint is content, not layout-of-work" `Quick
      (fun () ->
        let lift =
          {
            Protocol.layout = "tech lambda=500\n";
            p_min = 3e-8;
            uniform_pdf = false;
            merge_equivalent = true;
            tile_nm = 200_000;
          }
        in
        let fp = Protocol.lift_fingerprint lift in
        check_bool "prefixed" true (String.length fp > 5 && String.sub fp 0 5 = "lift-");
        (* Retiling the same layout must still hit the cache... *)
        check_bool "tile-free" true
          (Protocol.lift_fingerprint { lift with Protocol.tile_nm = 0 } = fp);
        (* ...while any change to layout or pricing must not. *)
        check_bool "layout keyed" true
          (Protocol.lift_fingerprint { lift with Protocol.layout = "x" } <> fp);
        check_bool "p_min keyed" true
          (Protocol.lift_fingerprint { lift with Protocol.p_min = 1e-9 } <> fp);
        check_bool "pdf keyed" true
          (Protocol.lift_fingerprint { lift with Protocol.uniform_pdf = true } <> fp));
    Alcotest.test_case "extracted round-trip" `Quick (fun () ->
        let e =
          {
            Protocol.ex_fingerprint = "lift-abc";
            ex_cached = true;
            ex_faults = "# fault list\n";
            ex_sites = 42;
            ex_bridging = 7;
            ex_line_opens = 3;
            ex_contact_opens = 2;
            ex_stuck_opens = 1;
          }
        in
        (match Protocol.extracted_of_json (Protocol.extracted_to_json e) with
        | Ok (Some back) -> check_bool "equal" true (back = e)
        | Ok None | Error _ -> Alcotest.fail "extracted did not round-trip");
        (* Non-extracted objects fall through for the event codec. *)
        match
          Protocol.extracted_of_json
            (Campaign.event_to_json (Campaign.Cache_hit { fingerprint = "x" }))
        with
        | Ok None -> ()
        | Ok (Some _) | Error _ -> Alcotest.fail "event misread as extracted");
    Alcotest.test_case "event round-trips" `Quick (fun () ->
        let faults = fault_array () in
        List.iter
          (fun ev ->
            let back =
              ok "event_of_json" (Campaign.event_of_json ~faults (Campaign.event_to_json ev))
            in
            check_bool "equal" true (back = ev))
          [
            Campaign.Accepted { fingerprint = "abc123"; total = 3 };
            Campaign.Progress { completed = 1; total = 3 };
            Campaign.Cache_hit { fingerprint = "abc123" };
            Campaign.Sharded { shards = 4 };
            Campaign.Shard_restarted { shard = 2; attempt = 1 };
            Campaign.Shard_lost { shard = 2; salvaged = 5; lost = 3 };
            Campaign.Cancelled
              { fingerprint = "abc123"; reason = "cancelled by user"; salvaged = 4 };
            Campaign.Failed { message = "no such node" };
          ]);
    Alcotest.test_case "campaign result round-trips" `Quick (fun () ->
        let compiled = compile () in
        let { Campaign.result; _ } = Campaign.run_local compiled in
        let faults = fault_array () in
        let back =
          ok "result_of_json" (Campaign.result_of_json ~faults (Campaign.result_to_json result))
        in
        check_string "fingerprint" result.Campaign.fingerprint back.Campaign.fingerprint;
        check_int "total" result.Campaign.total back.Campaign.total;
        check_bool "wall clock survives" true
          (back.Campaign.wall_seconds = result.Campaign.wall_seconds);
        check_string "same detection table"
          (Anafault.Report.csv_of_results result.Campaign.results)
          (Anafault.Report.csv_of_results back.Campaign.results);
        let d, u, f = Campaign.tally back in
        check_int "detected" 2 d;
        check_int "undetected" 1 u;
        check_int "failed" 0 f);
  ]

(* --- Fingerprint pinning ----------------------------------------------- *)

(* The campaign fingerprint is the content address of every cache entry
   and journal; silent drift would orphan them all.  This golden value
   may only change with a deliberate fingerprint-format bump. *)
let pinned_fingerprint = "90ab90579a2ba02d2ee8cc968aa5ab1b"

let fingerprint_tests =
  [
    Alcotest.test_case "compiled fingerprint matches the pinned golden" `Quick
      (fun () ->
        check_string "fingerprint" pinned_fingerprint
          (compile ()).Campaign.fingerprint);
    Alcotest.test_case "fingerprint ignores schedule knobs" `Quick (fun () ->
        let wide =
          {
            spec with
            Campaign.options =
              { spec.Campaign.options with Campaign.domains = 7; batch = 5 };
          }
        in
        check_string "same" pinned_fingerprint
          (ok "compile" (Campaign.compile wide)).Campaign.fingerprint);
    Alcotest.test_case "fingerprint tracks electrical options" `Quick (fun () ->
        let tighter =
          {
            spec with
            Campaign.options =
              {
                spec.Campaign.options with
                Campaign.tolerance = { Anafault.Detect.tol_v = 0.5; tol_t = 1e-7 };
              };
          }
        in
        check_bool "different" true
          ((ok "compile" (Campaign.compile tighter)).Campaign.fingerprint
          <> pinned_fingerprint));
  ]

(* --- Compile validation ------------------------------------------------ *)

let compile_tests =
  [
    Alcotest.test_case "missing .tran is an error" `Quick (fun () ->
        let without line text =
          String.split_on_char '\n' text
          |> List.filter (fun l -> l <> line)
          |> String.concat "\n"
        in
        let s = { spec with Campaign.deck = without ".tran 10n 4u UIC" deck_text } in
        check_bool "error" true (Result.is_error (Campaign.compile s)));
    Alcotest.test_case "unknown observed node is an error" `Quick (fun () ->
        let s = { spec with Campaign.observed = Some "ghost" } in
        check_bool "error" true (Result.is_error (Campaign.compile s)));
    Alcotest.test_case "garbage deck is an error, not an exception" `Quick (fun () ->
        let s = { spec with Campaign.deck = "inv\nQQ what is this\n.end\n" } in
        check_bool "error" true (Result.is_error (Campaign.compile s)));
    Alcotest.test_case "garbage fault list is an error, not an exception" `Quick
      (fun () ->
        let s = { spec with Campaign.faults = "#1 blah BLAH x y\n" } in
        check_bool "error" true (Result.is_error (Campaign.compile s)));
  ]

(* --- Failure string codec ---------------------------------------------- *)

let failure_tests =
  [
    Alcotest.test_case "failure strings round-trip" `Quick (fun () ->
        List.iter
          (fun failure ->
            let s = Outcome.failure_to_string failure in
            match Outcome.failure_of_string s with
            | Error msg -> Alcotest.failf "%s: %s" s msg
            | Ok back -> check_bool s true (back = failure))
          [
            Outcome.Dc_no_convergence "";
            Outcome.Dc_no_convergence "dc failed at t=0";
            Outcome.Tran_step_underflow "h=1e-21";
            Outcome.Singular_matrix "pivot 3";
            Outcome.Bad_injection "no device M9";
            Outcome.Budget_exceeded "1000 iterations";
            Outcome.Crashed "Stack_overflow";
          ]);
    Alcotest.test_case "detail with colons survives" `Quick (fun () ->
        let f = Outcome.Crashed "Failure: nested: detail" in
        check_bool "round trip" true
          (Outcome.failure_of_string (Outcome.failure_to_string f) = Ok f));
    Alcotest.test_case "unknown kind is an error" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error (Outcome.failure_of_string "gremlins: in the matrix")));
  ]

(* --- Sharding and journal merge ---------------------------------------- *)

let shard_tests =
  [
    Alcotest.test_case "shard strings round-trip" `Quick (fun () ->
        check_string "print" "1/4" (Campaign.shard_to_string (1, 4));
        check_bool "parse" true (Campaign.shard_of_string "1/4" = Ok (1, 4));
        check_bool "reject shape" true (Result.is_error (Campaign.shard_of_string "3"));
        check_bool "reject range" true
          (Result.is_error (Campaign.shard_of_string "4/4"));
        check_bool "reject zero" true
          (Result.is_error (Campaign.shard_of_string "0/0")));
    Alcotest.test_case "shard indices partition the campaign" `Quick (fun () ->
        let total = 11 in
        List.iter
          (fun count ->
            let slices =
              List.init count (fun index ->
                  Campaign.shard_indices ~shard:(index, count) ~total)
            in
            let all = List.sort compare (List.concat slices) in
            check_bool
              (Printf.sprintf "%d-way partition" count)
              true
              (all = List.init total Fun.id))
          [ 1; 2; 4 ]);
    Alcotest.test_case "sharded journals merge into the unsharded campaign" `Slow
      (fun () ->
        let compiled = compile () in
        let faults = fault_array () in
        let total = Array.length faults in
        (* The unsharded reference: run locally, keep the detection CSV. *)
        let { Campaign.result = serial; _ } = Campaign.run_local compiled in
        let serial_csv = Anafault.Report.csv_of_results serial.Campaign.results in
        List.iter
          (fun count ->
            let label = Printf.sprintf "%d-way" count in
            let shard_paths =
              List.init count (fun i -> temp_path (Printf.sprintf ".shard%d" i))
            in
            List.iteri
              (fun i path ->
                let simulated =
                  ok (label ^ " run_shard")
                    (Campaign.run_shard ~journal_path:path ~shard:(i, count)
                       compiled)
                in
                check_int
                  (Printf.sprintf "%s shard %d simulates its slice" label i)
                  (List.length
                     (Campaign.shard_indices ~shard:(i, count) ~total))
                  simulated)
              shard_paths;
            let merged_path = temp_path ".merged" in
            let merged_count =
              ok (label ^ " merge")
                (Journal.merge ~out:merged_path
                   ~fingerprint:compiled.Campaign.fingerprint ~faults
                   shard_paths)
            in
            check_int (label ^ " merge holds every fault") total merged_count;
            (* Interchangeable with a serial journal: resuming the
               unsharded campaign from it restores everything - zero
               faults left to simulate. *)
            let journal =
              ok (label ^ " reopen")
                (Journal.start ~path:merged_path
                   ~fingerprint:compiled.Campaign.fingerprint ~resume:true
                   ~faults)
            in
            check_int (label ^ " fully restored") total
              (Journal.restored_count journal);
            let merged_result =
              ok (label ^ " result_of_journal")
                (Campaign.result_of_journal compiled journal)
            in
            Journal.close journal;
            (* Byte-identical detection table. *)
            check_string (label ^ " detection CSV") serial_csv
              (Anafault.Report.csv_of_results merged_result.Campaign.results);
            List.iter Sys.remove shard_paths;
            Sys.remove merged_path)
          [ 1; 2; 4 ]);
  ]

(* --- Failpoints --------------------------------------------------------- *)

module Failpoint = Obs.Failpoint

let failpoint_tests =
  let with_reset f () =
    Failpoint.reset ();
    Fun.protect ~finally:Failpoint.reset f
  in
  [
    Alcotest.test_case "fail fires once" `Quick
      (with_reset (fun () ->
           Failpoint.arm "t.fail" Failpoint.Fail;
           check_bool "armed" true (Failpoint.active "t.fail");
           (match Failpoint.hit "t.fail" with
           | () -> Alcotest.fail "expected Injected"
           | exception Failpoint.Injected name ->
             check_string "payload is the site name" "t.fail" name);
           check_bool "spent" false (Failpoint.active "t.fail");
           Failpoint.hit "t.fail" (* one-shot: second hit is a no-op *)));
    Alcotest.test_case "@N fires on the Nth hit" `Quick
      (with_reset (fun () ->
           Failpoint.arm ~after:3 "t.third" Failpoint.Fail;
           Failpoint.hit "t.third";
           Failpoint.hit "t.third";
           match Failpoint.hit "t.third" with
           | () -> Alcotest.fail "expected Injected on hit 3"
           | exception Failpoint.Injected _ -> ()));
    Alcotest.test_case "unarmed sites are free" `Quick
      (with_reset (fun () ->
           Failpoint.hit "t.nothing";
           check_bool "cut passes through" true
             (Failpoint.cut "t.nothing" "payload" = None)));
    Alcotest.test_case "torn cuts the payload once" `Quick
      (with_reset (fun () ->
           Failpoint.arm "t.torn" (Failpoint.Torn 0.5);
           (match Failpoint.cut "t.torn" "abcdefgh" with
           | Some prefix -> check_string "half the bytes" "abcd" prefix
           | None -> Alcotest.fail "expected a torn prefix");
           check_bool "one-shot" true (Failpoint.cut "t.torn" "abcdefgh" = None)));
    Alcotest.test_case "delay stays armed" `Quick
      (with_reset (fun () ->
           Failpoint.arm "t.delay" (Failpoint.Delay 0.0);
           Failpoint.hit "t.delay";
           Failpoint.hit "t.delay";
           check_bool "still armed" true (Failpoint.active "t.delay")));
    Alcotest.test_case "spec language parses" `Quick
      (with_reset (fun () ->
           ignore
             (ok "configure"
                (Failpoint.configure
                   "a.one=fail, b.two=delay:0.5@3 ,c.three=torn:0.25,d.four=crash:/tmp/cookie"));
           List.iter
             (fun n -> check_bool n true (Failpoint.active n))
             [ "a.one"; "b.two"; "c.three"; "d.four" ]));
    Alcotest.test_case "spec language rejects junk" `Quick
      (with_reset (fun () ->
           List.iter
             (fun bad ->
               check_bool bad true (Result.is_error (Failpoint.configure bad)))
             [ "noequals"; "x=explode"; "x=torn:lots"; "x=fail@zero"; "=fail" ]));
    Alcotest.test_case "load_env arms from the environment" `Quick
      (with_reset (fun () ->
           Unix.putenv Failpoint.env_var "t.env=fail";
           Fun.protect ~finally:(fun () -> Unix.putenv Failpoint.env_var "")
           @@ fun () ->
           ignore (ok "load_env" (Failpoint.load_env ()));
           check_bool "armed" true (Failpoint.active "t.env")));
    Alcotest.test_case "load_env is a no-op when unset" `Quick
      (with_reset (fun () ->
           Unix.putenv Failpoint.env_var "";
           ignore (ok "load_env" (Failpoint.load_env ()));
           check_bool "nothing armed" false (Failpoint.active "t.env")));
  ]

(* --- The write-ahead job queue ------------------------------------------ *)

module Wal = Anafaultd.Queue

let temp_dir () =
  let dir = Filename.temp_file "anaf" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let wal_entry fp = { Wal.fingerprint = fp; client = "ci"; spec }

let wal_tests =
  [
    Alcotest.test_case "pushes survive a reopen, done retires" `Quick (fun () ->
        let path = Filename.concat (temp_dir ()) "queue.wal" in
        let wal, pending = ok "open" (Wal.open_ ~path) in
        check_int "fresh queue is empty" 0 (List.length pending);
        ok "push a" (Wal.push wal (wal_entry "aaa"));
        ok "push b" (Wal.push wal (wal_entry "bbb"));
        check_int "two pending" 2 (Wal.pending wal);
        Wal.close wal;
        (* The reopen is the kill -9 restart: both jobs come back, in
           arrival order. *)
        let wal, pending = ok "reopen" (Wal.open_ ~path) in
        check_bool "replayed in order" true
          (List.map (fun (e : Wal.entry) -> e.Wal.fingerprint) pending
          = [ "aaa"; "bbb" ]);
        Wal.mark_done wal "aaa";
        Wal.close wal;
        let wal, pending = ok "reopen 2" (Wal.open_ ~path) in
        check_bool "only b left" true
          (List.map (fun (e : Wal.entry) -> e.Wal.fingerprint) pending
          = [ "bbb" ]);
        Wal.close wal);
    Alcotest.test_case "duplicate pushes collapse" `Quick (fun () ->
        let path = Filename.concat (temp_dir ()) "queue.wal" in
        let wal, _ = ok "open" (Wal.open_ ~path) in
        ok "push" (Wal.push wal (wal_entry "aaa"));
        ok "push twin" (Wal.push wal (wal_entry "aaa"));
        check_int "one pending" 1 (Wal.pending wal);
        Wal.close wal;
        let wal, pending = ok "reopen" (Wal.open_ ~path) in
        check_int "still one" 1 (List.length pending);
        Wal.close wal);
    Alcotest.test_case "a torn tail is skipped, not fatal" `Quick (fun () ->
        let path = Filename.concat (temp_dir ()) "queue.wal" in
        let wal, _ = ok "open" (Wal.open_ ~path) in
        ok "push" (Wal.push wal (wal_entry "aaa"));
        Wal.close wal;
        (* The crash tore the last append mid-line. *)
        let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
        output_string oc "{\"op\":\"push\",\"fingerprint\":\"bb";
        close_out oc;
        let wal, pending = ok "reopen" (Wal.open_ ~path) in
        check_bool "intact push survives, torn one vanishes" true
          (List.map (fun (e : Wal.entry) -> e.Wal.fingerprint) pending
          = [ "aaa" ]);
        Wal.close wal);
    Alcotest.test_case "reopen compacts done records away" `Quick (fun () ->
        let path = Filename.concat (temp_dir ()) "queue.wal" in
        let wal, _ = ok "open" (Wal.open_ ~path) in
        ok "push a" (Wal.push wal (wal_entry "aaa"));
        ok "push b" (Wal.push wal (wal_entry "bbb"));
        Wal.mark_done wal "aaa";
        Wal.close wal;
        let wal, _ = ok "reopen" (Wal.open_ ~path) in
        Wal.close wal;
        let lines =
          In_channel.with_open_text path @@ fun ic ->
          In_channel.input_lines ic
        in
        (* header + the one live push: the file tracks queue depth, not
           daemon lifetime *)
        check_int "compacted to header + 1 push" 2 (List.length lines));
    Alcotest.test_case "queue.append failpoint reaches the caller" `Quick
      (fun () ->
        let path = Filename.concat (temp_dir ()) "queue.wal" in
        let wal, _ = ok "open" (Wal.open_ ~path) in
        Failpoint.reset ();
        Fun.protect ~finally:Failpoint.reset @@ fun () ->
        Failpoint.arm "queue.append" Failpoint.Fail;
        (match Wal.push wal (wal_entry "aaa") with
        | exception Failpoint.Injected _ -> ()
        | Ok () -> Alcotest.fail "expected the failpoint to fire"
        | Error _ -> Alcotest.fail "expected the failpoint, not an IO error");
        (* The failed append journalled nothing. *)
        ok "push after" (Wal.push wal (wal_entry "aaa"));
        check_int "one pending" 1 (Wal.pending wal);
        Wal.close wal);
  ]

(* --- The result cache ---------------------------------------------------- *)

module Cache = Anafaultd.Cache

let cache_value n = J.Obj [ ("data", J.String (String.make n 'x')) ]

(* Bytes of the *.json entries on disk - what the budget bounds. *)
let cache_dir_bytes dir =
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name ".json" then
        acc + (Unix.stat (Filename.concat dir name)).Unix.st_size
      else acc)
    0 (Sys.readdir dir)

let cache_tests =
  [
    Alcotest.test_case "store / find round trip" `Quick (fun () ->
        let c = ok "create" (Cache.create ~dir:(temp_dir ()) ()) in
        Cache.store c "aa" (cache_value 10);
        check_bool "found" true (Cache.find c "aa" = Some (cache_value 10));
        check_bool "miss" true (Cache.find c "bb" = None);
        check_int "one store" 1 (Cache.stores c);
        check_int "one hit" 1 (Cache.hits c);
        check_int "one miss" 1 (Cache.misses c));
    Alcotest.test_case "keys that could escape the directory are refused"
      `Quick (fun () ->
        let dir = temp_dir () in
        let c = ok "create" (Cache.create ~dir ()) in
        Cache.store c "../evil" (cache_value 10);
        check_bool "not stored" true (Cache.find c "../evil" = None);
        check_int "nothing on disk" 0 (Array.length (Sys.readdir dir)));
    Alcotest.test_case "LRU eviction keeps the directory under budget" `Quick
      (fun () ->
        (* Measure one entry, then budget for two. *)
        let probe = ok "create" (Cache.create ~dir:(temp_dir ()) ()) in
        Cache.store probe "aa" (cache_value 100);
        let entry = Cache.total_bytes probe in
        check_bool "probe stored" true (entry > 100);
        let budget = (2 * entry) + 4 in
        let dir = temp_dir () in
        let c = ok "create" (Cache.create ~budget_bytes:budget ~dir ()) in
        Cache.store c "aa" (cache_value 100);
        Cache.store c "bb" (cache_value 100);
        check_int "both fit" 0 (Cache.evictions c);
        (* Touch aa so bb is the least recently used... *)
        check_bool "aa hits" true (Cache.find c "aa" <> None);
        Cache.store c "cc" (cache_value 100);
        (* ...and gets evicted when cc arrives. *)
        check_int "one eviction" 1 (Cache.evictions c);
        check_bool "bb evicted" true (Cache.find c "bb" = None);
        check_bool "aa kept" true (Cache.find c "aa" <> None);
        check_bool "cc kept" true (Cache.find c "cc" <> None);
        check_bool "accounting under budget" true (Cache.total_bytes c <= budget);
        check_bool "directory under budget" true (cache_dir_bytes dir <= budget));
    Alcotest.test_case "mtime seeds LRU order across a reopen" `Quick (fun () ->
        let dir = temp_dir () in
        let c = ok "create" (Cache.create ~dir ()) in
        Cache.store c "aa" (cache_value 100);
        let entry = Cache.total_bytes c in
        Unix.sleepf 0.02;
        Cache.store c "bb" (cache_value 100);
        (* Reopen with room for only one entry: the older file goes. *)
        let c = ok "reopen" (Cache.create ~budget_bytes:(entry + 4) ~dir ()) in
        Cache.store c "cc" (cache_value 100);
        check_bool "oldest evicted first" true (Cache.find c "aa" = None);
        check_bool "newest entry kept" true (Cache.find c "cc" <> None));
    Alcotest.test_case "an entry larger than the budget is not stored" `Quick
      (fun () ->
        let dir = temp_dir () in
        let c = ok "create" (Cache.create ~budget_bytes:64 ~dir ()) in
        Cache.store c "aa" (cache_value 1000);
        check_bool "skipped" true (Cache.find c "aa" = None);
        check_int "nothing on disk" 0 (cache_dir_bytes dir));
    Alcotest.test_case "a corrupt entry is quarantined, not fatal" `Quick
      (fun () ->
        let dir = temp_dir () in
        let c = ok "create" (Cache.create ~dir ()) in
        Cache.store c "aa" (cache_value 100);
        (* Bit rot: the file no longer matches its checksum header. *)
        let path = Filename.concat dir "aa.json" in
        let oc = open_out path in
        output_string oc "garbage that is not an entry\n";
        close_out oc;
        check_bool "served as a miss" true (Cache.find c "aa" = None);
        check_int "counted" 1 (Cache.corrupt c);
        check_bool "set aside for post-mortems" true
          (Sys.file_exists (path ^ ".corrupt"));
        (* The slot is reusable. *)
        Cache.store c "aa" (cache_value 50);
        check_bool "healthy again" true (Cache.find c "aa" = Some (cache_value 50)));
    Alcotest.test_case "a torn write (failpoint) quarantines on read" `Quick
      (fun () ->
        Failpoint.reset ();
        Fun.protect ~finally:Failpoint.reset @@ fun () ->
        let dir = temp_dir () in
        let c = ok "create" (Cache.create ~dir ()) in
        Failpoint.arm "cache.store.torn" (Failpoint.Torn 0.5);
        Cache.store c "aa" (cache_value 100);
        (* The torn entry was committed; validation catches it. *)
        check_bool "torn entry is a miss" true (Cache.find c "aa" = None);
        check_int "quarantined" 1 (Cache.corrupt c);
        (* The failpoint is one-shot: the retry stores a good entry. *)
        Cache.store c "aa" (cache_value 100);
        check_bool "second store is durable" true
          (Cache.find c "aa" = Some (cache_value 100)));
  ]

(* --- Protocol robustness ------------------------------------------------- *)

let channel_of_string s =
  let path = Filename.temp_file "proto" ".ndjson" in
  Out_channel.with_open_bin path (fun oc -> output_string oc s);
  open_in_bin path

let protocol_tests =
  [
    Alcotest.test_case "malformed line: typed error, stream continues" `Quick
      (fun () ->
        let ic = channel_of_string "this is not json\n{\"cmd\":\"ping\"}\n" in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        (match Protocol.recv ic with
        | Error msg ->
          check_bool "names the problem" true
            (String.length msg > 0)
        | Ok _ -> Alcotest.fail "expected a decode error");
        (* The channel sits at the next line boundary. *)
        match ok "recv after error" (Protocol.recv ic) with
        | Some json ->
          check_bool "ping decodes" true
            (ok "request" (Protocol.request_of_json json) = Protocol.Ping)
        | None -> Alcotest.fail "stream ended early");
    Alcotest.test_case "truncated NDJSON at EOF is a typed error" `Quick
      (fun () ->
        let ic = channel_of_string "{\"cmd\":\"sub" in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        match Protocol.recv ic with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a decode error");
    Alcotest.test_case "oversized request: typed error, line drained" `Quick
      (fun () ->
        let ic =
          channel_of_string (String.make 100 'a' ^ "\n{\"cmd\":\"ping\"}\n")
        in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        (match Protocol.recv ~limit_bytes:32 ic with
        | Error msg ->
          check_bool "says oversized" true
            (String.length msg > 0
            && String.sub msg (String.length msg - 5) 5 = "bytes")
        | Ok _ -> Alcotest.fail "expected the size bound to trip");
        match ok "recv after oversize" (Protocol.recv ~limit_bytes:32 ic) with
        | Some json ->
          check_bool "next line intact" true
            (ok "request" (Protocol.request_of_json json) = Protocol.Ping)
        | None -> Alcotest.fail "stream ended early");
    Alcotest.test_case "unknown and ill-shaped requests are typed errors"
      `Quick (fun () ->
        check_bool "unknown cmd" true
          (Result.is_error
             (Protocol.request_of_json (J.Obj [ ("cmd", J.String "fly") ])));
        check_bool "non-object" true
          (Result.is_error (Protocol.request_of_json (J.String "ping")));
        check_bool "missing spec" true
          (Result.is_error
             (Protocol.request_of_json (J.Obj [ ("cmd", J.String "submit") ])));
        check_bool "ill-typed client" true
          (Result.is_error
             (Protocol.request_of_json
                (J.Obj
                   [
                     ("cmd", J.String "submit");
                     ("spec", Campaign.spec_to_json spec);
                     ("client", J.Int 7);
                   ]))));
    Alcotest.test_case "rejection codec round-trips" `Quick (fun () ->
        List.iter
          (fun reason ->
            let json = Protocol.rejected_to_json ~reason ~message:"full up" in
            match ok "rejected_of_json" (Protocol.rejected_of_json json) with
            | Some (back, msg) ->
              check_bool "reason" true (back = reason);
              check_string "message" "full up" msg
            | None -> Alcotest.fail "rejection not recognised")
          [ Protocol.Queue_full; Protocol.Quota_exceeded ];
        (* Non-rejections fall through for the event codec. *)
        check_bool "event is not a rejection" true
          (ok "fall through"
             (Protocol.rejected_of_json
                (Campaign.event_to_json (Campaign.Sharded { shards = 2 })))
          = None));
  ]

(* --- The daemon, in process -------------------------------------------- *)

let daemon_socket_dir () =
  (* sun_path is ~108 chars; build a short path under the system temp
     dir rather than anywhere near _build. *)
  let dir = Filename.temp_file "anafd" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec try_connect attempts =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ when attempts > 0 ->
      Thread.delay 0.05;
      try_connect (attempts - 1)
  in
  try_connect 100

let drain_events ~faults ic =
  let rec loop acc =
    match ok "recv" (Protocol.recv ic) with
    | None -> Alcotest.fail "daemon closed the stream early"
    | Some json -> begin
      match ok "event" (Campaign.event_of_json ~faults json) with
      | (Campaign.Finished _ | Campaign.Failed _ | Campaign.Cancelled _) as ev
        -> List.rev (ev :: acc)
      | ev -> loop (ev :: acc)
    end
  in
  loop []

let submit_and_wait ?client ?deadline_s ?(spec = spec) ~faults path =
  let fd = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Protocol.send oc
    (Protocol.request_to_json (Protocol.Submit { spec; client; deadline_s }));
  drain_events ~faults ic

let one_shot path request =
  let fd = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Protocol.send oc (Protocol.request_to_json request);
  match ok "recv" (Protocol.recv ic) with
  | Some json -> json
  | None -> Alcotest.fail "daemon closed the connection without replying"

(* A second campaign with its own fingerprint (two faults instead of
   three), for tests that need distinct jobs in flight. *)
let spec2 =
  {
    spec with
    Campaign.faults =
      Faults.Fault_list.to_string (List.filteri (fun i _ -> i < 2) fixture_faults);
  }

let fault_array2 () =
  Array.of_list (ok "compile spec2" (Campaign.compile spec2)).Campaign.faults

let spec3 =
  {
    spec with
    Campaign.faults =
      Faults.Fault_list.to_string (List.filteri (fun i _ -> i < 1) fixture_faults);
  }

let submit_expect_rejected ?client ~spec path =
  let fd = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Protocol.send oc
    (Protocol.request_to_json
       (Protocol.Submit { spec; client; deadline_s = None }));
  match ok "recv" (Protocol.recv ic) with
  | None -> Alcotest.fail "daemon closed without replying"
  | Some json -> begin
    match ok "rejected" (Protocol.rejected_of_json json) with
    | Some (reason, _message) -> reason
    | None -> Alcotest.failf "expected a rejection, got %s" (J.to_string json)
  end

let stat_int json name =
  match json with
  | J.Obj fields -> begin
    match List.assoc_opt name fields with Some (J.Int n) -> n | _ -> -1
  end
  | _ -> -1

let rec poll ?(tries = 400) what f =
  if tries = 0 then Alcotest.failf "timed out waiting for %s" what
  else if f () then ()
  else begin
    Thread.delay 0.05;
    poll ~tries:(tries - 1) what f
  end

let finished_of events =
  match
    List.filter_map (function Campaign.Finished r -> Some r | _ -> None) events
  with
  | [ r ] -> r
  | _ -> Alcotest.fail "expected exactly one Finished event"

(* Where dune built the anafault CLI, relative to the test's cwd (the
   dune stanza depends on it). *)
let anafault_exe () =
  let candidates =
    [
      "../bin/anafault_main.exe";
      Filename.concat (Filename.dirname Sys.executable_name)
        "../bin/anafault_main.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> Alcotest.fail "anafault binary not built next to the tests"

let daemon_tests =
  [
    Alcotest.test_case "submit, cache hit, stats, shutdown" `Slow (fun () ->
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        let cfg =
          Anafaultd.Server.default_config ~socket_path
            ~work_dir:(Filename.concat dir "work")
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let faults = fault_array () in
        (* First submission simulates. *)
        let events = submit_and_wait ~faults socket_path in
        let finished = function
          | Campaign.Finished r -> Some r
          | _ -> None
        in
        let first =
          match List.filter_map finished events with
          | [ r ] -> r
          | _ -> Alcotest.fail "expected exactly one Finished event"
        in
        check_bool "first run is not cached" false first.Campaign.cached;
        check_bool "accepted preceded it" true
          (List.exists (function Campaign.Accepted _ -> true | _ -> false) events);
        (* Second submission of the same spec is served from the cache. *)
        let events2 = submit_and_wait ~faults socket_path in
        check_bool "cache hit announced" true
          (List.exists (function Campaign.Cache_hit _ -> true | _ -> false) events2);
        let second =
          match List.filter_map finished events2 with
          | [ r ] -> r
          | _ -> Alcotest.fail "expected exactly one Finished event"
        in
        check_bool "second run is cached" true second.Campaign.cached;
        check_string "identical detection tables"
          (Anafault.Report.csv_of_results first.Campaign.results)
          (Anafault.Report.csv_of_results second.Campaign.results);
        (* Counters saw one job and one cache hit. *)
        (match one_shot socket_path Protocol.Stats with
        | J.Obj fields ->
          check_bool "one job" true (List.assoc "jobs" fields = J.Int 1);
          check_bool "one cache hit" true
            (List.assoc "cache_hits" fields = J.Int 1)
        | _ -> Alcotest.fail "stats: expected an object");
        (* Shutdown stops the server thread. *)
        (match one_shot socket_path Protocol.Shutdown with
        | J.Obj [ ("ok", J.Bool true) ] -> ()
        | _ -> Alcotest.fail "shutdown: expected ok");
        Thread.join server);
    Alcotest.test_case "malformed wire input never kills the session" `Slow
      (fun () ->
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        let cfg =
          Anafaultd.Server.default_config ~socket_path
            ~work_dir:(Filename.concat dir "work")
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let faults = fault_array () in
        let fd = connect socket_path in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            let expect_failed what line =
              output_string oc line;
              output_char oc '\n';
              flush oc;
              match ok "recv" (Protocol.recv ic) with
              | None -> Alcotest.failf "%s: daemon closed the session" what
              | Some json -> begin
                match ok "event" (Campaign.event_of_json ~faults json) with
                | Campaign.Failed _ -> ()
                | _ -> Alcotest.failf "%s: expected a typed failed event" what
              end
            in
            (* Garbage, an unknown command, a wrong shape: each answers
               with a typed failure and the session keeps serving. *)
            expect_failed "not json" "}{ this is not json";
            expect_failed "unknown cmd" "{\"cmd\":\"levitate\"}";
            expect_failed "non-object" "\"ping\"";
            expect_failed "missing spec" "{\"cmd\":\"submit\"}";
            (* ...as the follow-up valid requests prove. *)
            Protocol.send oc (Protocol.request_to_json Protocol.Ping);
            (match ok "recv" (Protocol.recv ic) with
            | Some (J.Obj [ ("ok", J.Bool true) ]) -> ()
            | _ -> Alcotest.fail "ping after garbage: expected ok");
            Protocol.send oc
              (Protocol.request_to_json
                 (Protocol.Submit { spec; client = None; deadline_s = None }));
            let result = finished_of (drain_events ~faults ic) in
            check_int "campaign still runs" 3
              (List.length result.Campaign.results));
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
    Alcotest.test_case "full queue and spent quota reject with types" `Slow
      (fun () ->
        Obs.Failpoint.reset ();
        Fun.protect ~finally:Obs.Failpoint.reset @@ fun () ->
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        let cfg =
          {
            (Anafaultd.Server.default_config ~socket_path
               ~work_dir:(Filename.concat dir "work"))
            with
            Anafaultd.Server.queue_limit = 2;
            client_quota = 1;
          }
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        (* Hold each job in the scheduler for a beat so the queue stays
           occupied while we probe the admission rules (Delay re-arms on
           every hit). *)
        Obs.Failpoint.arm "job.run" (Obs.Failpoint.Delay 1.0);
        let first =
          Thread.create
            (fun () ->
              ignore (submit_and_wait ~client:"ci" ~faults:(fault_array ())
                        socket_path))
            ()
        in
        poll "the first job to be admitted" (fun () ->
            stat_int (one_shot socket_path Protocol.Stats) "jobs" >= 1);
        (* Client ci already holds its one slot: a second, distinct
           campaign from the same client is quota_exceeded (the queue
           itself still has room). *)
        check_bool "quota_exceeded" true
          (submit_expect_rejected ~client:"ci" ~spec:spec2 socket_path
          = Protocol.Quota_exceeded);
        (* Another client is welcome to the remaining queue slot... *)
        let second =
          Thread.create
            (fun () ->
              ignore (submit_and_wait ~client:"bob" ~spec:spec2
                        ~faults:(fault_array2 ()) socket_path))
            ()
        in
        poll "the second job to be admitted" (fun () ->
            stat_int (one_shot socket_path Protocol.Stats) "jobs" >= 2);
        (* ...which fills the queue: a third fingerprint - whoever
           submits it - is queue_full. *)
        check_bool "queue_full" true
          (submit_expect_rejected ~spec:spec3 socket_path = Protocol.Queue_full);
        Thread.join first;
        Thread.join second;
        (* Rejections are counted. *)
        check_bool "rejected stat" true
          (stat_int (one_shot socket_path Protocol.Stats) "rejected" >= 2);
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
    Alcotest.test_case "queued jobs survive a restart (WAL replay)" `Slow
      (fun () ->
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        let work_dir = Filename.concat dir "work" in
        Unix.mkdir work_dir 0o755;
        (* The previous daemon life accepted this job and was killed
           before running it: all that remains is its WAL record. *)
        let fingerprint = (compile ()).Campaign.fingerprint in
        let wal, pending =
          ok "open wal" (Wal.open_ ~path:(Filename.concat work_dir "queue.wal"))
        in
        check_int "fresh wal" 0 (List.length pending);
        ok "push" (Wal.push wal { Wal.fingerprint; client = "ci"; spec });
        Wal.close wal;
        let cfg =
          Anafaultd.Server.default_config ~socket_path ~work_dir
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let faults = fault_array () in
        (* The restarted daemon finishes the job with no client attached. *)
        poll "the replayed job to finish" (fun () ->
            let stats = one_shot socket_path Protocol.Stats in
            stat_int stats "replayed" = 1
            && stat_int stats "faults_simulated" = 3);
        (* The resubmitting client is served from the cache. *)
        let events = submit_and_wait ~faults socket_path in
        check_bool "cache hit" true
          (List.exists
             (function Campaign.Cache_hit _ -> true | _ -> false)
             events);
        check_bool "result is cached" true (finished_of events).Campaign.cached;
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
    Alcotest.test_case "a crashed shard child is restarted and resumes" `Slow
      (fun () ->
        let exe = anafault_exe () in
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        (* Shard 0's first life dies suddenly (Unix._exit, nothing
           flushed); the cookie makes its respawn - which inherits the
           same environment - sail through. *)
        let cookie = Filename.concat dir "crash.cookie" in
        Unix.putenv Obs.Failpoint.env_var
          (Printf.sprintf "shard.0.run=crash:%s" cookie);
        Fun.protect
          ~finally:(fun () -> Unix.putenv Obs.Failpoint.env_var "")
        @@ fun () ->
        let cfg =
          {
            (Anafaultd.Server.default_config ~socket_path
               ~work_dir:(Filename.concat dir "work"))
            with
            Anafaultd.Server.shards = 2;
            shard_retries = 2;
            worker_exe = Some exe;
          }
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let faults = fault_array () in
        let events = submit_and_wait ~faults socket_path in
        check_bool "the restart was announced" true
          (List.exists
             (function Campaign.Shard_restarted _ -> true | _ -> false)
             events);
        check_bool "the crash cookie was planted" true (Sys.file_exists cookie);
        let result = finished_of events in
        check_int "all faults accounted for" 3
          (List.length result.Campaign.results);
        check_bool "no fault marked crashed" true
          (List.for_all
             (fun (r : Anafault.Outcome.fault_result) ->
               match r.Anafault.Outcome.outcome with
               | Anafault.Outcome.Sim_failed (Anafault.Outcome.Crashed _) ->
                 false
               | _ -> true)
             result.Campaign.results);
        (* The supervised run produced the same detection table as an
           undisturbed local one. *)
        let local = Campaign.run_local (compile ()) in
        check_string "matches the local run"
          (Anafault.Report.csv_of_results local.Campaign.result.Campaign.results)
          (Anafault.Report.csv_of_results result.Campaign.results);
        check_bool "restart counted" true
          (stat_int (one_shot socket_path Protocol.Stats) "shard_restarts" >= 1);
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
    Alcotest.test_case "a shard dead past its budget degrades, uncached" `Slow
      (fun () ->
        let exe = anafault_exe () in
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        (* No cookie and no retries: shard 1 dies on every life. *)
        Unix.putenv Obs.Failpoint.env_var "shard.1.run=crash";
        let cfg =
          {
            (Anafaultd.Server.default_config ~socket_path
               ~work_dir:(Filename.concat dir "work"))
            with
            Anafaultd.Server.shards = 2;
            shard_retries = 0;
            worker_exe = Some exe;
          }
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let faults = fault_array () in
        let events = submit_and_wait ~faults socket_path in
        Unix.putenv Obs.Failpoint.env_var "";
        (* Shard 1 owns fault index 1 of 0..2: one fault lost, none
           salvaged (the child dies before simulating anything). *)
        (match
           List.filter_map
             (function
               | Campaign.Shard_lost { shard; salvaged; lost } ->
                 Some (shard, salvaged, lost)
               | _ -> None)
             events
         with
        | [ (shard, salvaged, lost) ] ->
          check_int "the dead shard" 1 shard;
          check_int "nothing salvaged" 0 salvaged;
          check_int "one fault lost" 1 lost
        | _ -> Alcotest.fail "expected exactly one Shard_lost event");
        let result = finished_of events in
        check_int "result stays total" 3 (List.length result.Campaign.results);
        let crashed =
          List.filter
            (fun (r : Anafault.Outcome.fault_result) ->
              match r.Anafault.Outcome.outcome with
              | Anafault.Outcome.Sim_failed (Anafault.Outcome.Crashed _) -> true
              | _ -> false)
            result.Campaign.results
        in
        check_int "the lost slice carries typed crashes" 1 (List.length crashed);
        (* A degraded result is never cached: with the failpoint gone,
           resubmission re-simulates and completes fully. *)
        let events2 = submit_and_wait ~faults socket_path in
        check_bool "no cache hit for the degraded result" true
          (not
             (List.exists
                (function Campaign.Cache_hit _ -> true | _ -> false)
                events2));
        let result2 = finished_of events2 in
        check_bool "full result after the retry" true
          (List.for_all
             (fun (r : Anafault.Outcome.fault_result) ->
               match r.Anafault.Outcome.outcome with
               | Anafault.Outcome.Sim_failed (Anafault.Outcome.Crashed _) ->
                 false
               | _ -> true)
             result2.Campaign.results);
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
    Alcotest.test_case "extract: cache, and chain into simulation" `Slow
      (fun () ->
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        let cfg =
          Anafaultd.Server.default_config ~socket_path
            ~work_dir:(Filename.concat dir "work")
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        (* A two-net metal1 layout whose labels name the inverter deck's
           nets, so the extracted bridge is simulatable against [spec]'s
           circuit. *)
        let layout =
          let b = Layout.Builder.create Layout.Tech.default in
          Layout.Builder.rect b Layout.Layer.Metal1
            (Geom.Rect.make 0 0 20_000 1_000);
          Layout.Builder.rect b Layout.Layer.Metal1
            (Geom.Rect.make 0 3_000 20_000 4_000);
          Layout.Builder.label b Layout.Layer.Metal1
            (Geom.Point.make 100 500) "vdd";
          Layout.Builder.label b Layout.Layer.Metal1
            (Geom.Point.make 100 3_500) "out";
          Layout.Cif.to_string (Layout.Builder.finish b)
        in
        let lift =
          {
            Protocol.layout;
            p_min = 0.0;
            uniform_pdf = false;
            merge_equivalent = true;
            tile_nm = 0;
          }
        in
        (* Send one extract request and hand the answer plus the still
           open stream to [k]. *)
        let extract ?simulate k =
          let fd = connect socket_path in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
          @@ fun () ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Protocol.send oc
            (Protocol.request_to_json
               (Protocol.Extract
                  { lift; simulate; client = None; deadline_s = None }));
          match ok "recv" (Protocol.recv ic) with
          | None -> Alcotest.fail "daemon closed before answering"
          | Some json -> begin
            match ok "extracted" (Protocol.extracted_of_json json) with
            | Some e -> k e ic
            | None ->
              Alcotest.failf "expected an extracted object, got %s"
                (J.to_string json)
          end
        in
        (* First extraction computes. *)
        let first =
          extract (fun e _ic ->
              check_bool "not cached" false e.Protocol.ex_cached;
              check_bool "lift fingerprint" true
                (String.sub e.Protocol.ex_fingerprint 0 5 = "lift-");
              check_bool "found the bridge" true (e.Protocol.ex_bridging >= 1);
              (* The answer is fault-list interface text. *)
              let parsed = Faults.Fault_list.of_string e.Protocol.ex_faults in
              check_int "faults parse" e.Protocol.ex_sites
                (max e.Protocol.ex_sites (List.length parsed));
              check_bool "bridges out and vdd" true
                (List.exists
                   (fun f ->
                     match f.Faults.Fault.kind with
                     | Faults.Fault.Bridge { net_a; net_b } ->
                       List.sort compare [ net_a; net_b ] = [ "out"; "vdd" ]
                     | _ -> false)
                   parsed);
              e)
        in
        (* Second extraction of the same spec is a cache hit, byte for
           byte. *)
        extract (fun e _ic ->
            check_bool "cached" true e.Protocol.ex_cached;
            check_string "same bytes" first.Protocol.ex_faults
              e.Protocol.ex_faults);
        (* Extract-then-simulate: the embedded spec's faults field is
           replaced by the extracted list and the usual event stream
           follows on the same connection. *)
        let sim_spec = { spec with Campaign.faults = "" } in
        extract ~simulate:sim_spec (fun e ic ->
            let faults =
              Array.of_list
                (ok "compile chained"
                   (Campaign.compile
                      { spec with Campaign.faults = e.Protocol.ex_faults }))
                  .Campaign.faults
            in
            let events = drain_events ~faults ic in
            check_bool "accepted" true
              (List.exists
                 (function Campaign.Accepted _ -> true | _ -> false)
                 events);
            let result = finished_of events in
            check_int "simulated the extracted list" (Array.length faults)
              (List.length result.Campaign.results));
        (* Counters: three extractions, two answered from the cache; the
           chained simulation was one ordinary job. *)
        let stats = one_shot socket_path Protocol.Stats in
        check_int "extracts" 3 (stat_int stats "extracts");
        check_int "extract hits" 2 (stat_int stats "extract_hits");
        check_int "jobs" 1 (stat_int stats "jobs");
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
  ]

(* --- Cancellation: token to wire --------------------------------------- *)

let is_cancelled_result (r : Anafault.Outcome.fault_result) =
  match r.Anafault.Outcome.outcome with
  | Anafault.Outcome.Sim_failed (Anafault.Outcome.Cancelled _) -> true
  | _ -> false

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* A serial-path spec (batch = 1) so the cancel lands at a
   deterministic fault boundary. *)
let serial_spec =
  {
    spec with
    Campaign.options = { Campaign.default_options with Campaign.batch = 1 };
  }

let cancel_tests =
  [
    Alcotest.test_case "token: first reason wins; never is inert" `Quick
      (fun () ->
        let t = Cancel.create () in
        check_bool "fresh token is live" false (Cancel.cancelled t);
        Cancel.cancel t Cancel.User_cancel;
        Cancel.cancel t (Cancel.Deadline 5.0);
        check_bool "first reason wins" true
          (Cancel.get t = Some Cancel.User_cancel);
        check_bool "check raises the first reason" true
          (match Cancel.check t with
          | exception Cancel.Cancelled Cancel.User_cancel -> true
          | exception Cancel.Cancelled _ -> false
          | () -> false);
        Cancel.cancel Cancel.never Cancel.User_cancel;
        check_bool "never cannot be cancelled" false
          (Cancel.cancelled Cancel.never);
        check_string "reasons render" "deadline exceeded (5s)"
          (Cancel.reason_to_string (Cancel.Deadline 5.0)));
    Alcotest.test_case
      "a cancelled local campaign journals only completed faults; the \
       journal resumes the rest" `Slow (fun () ->
        let compiled = ok "compile" (Campaign.compile serial_spec) in
        let faults = Array.of_list compiled.Campaign.faults in
        let path = temp_path ".journal" in
        let token = Cancel.create () in
        let journal =
          ok "journal"
            (Journal.start ~path ~fingerprint:compiled.Campaign.fingerprint
               ~resume:false ~faults)
        in
        (* Fire the token the moment the first fault completes: the
           serial loop then stamps every remaining fault Cancelled
           without simulating it. *)
        let progress completed _total =
          if completed = 1 then Cancel.cancel token Cancel.User_cancel
        in
        let local =
          Campaign.run_local ~progress ~journal
            (Campaign.with_cancel compiled token)
        in
        Journal.close journal;
        let results = local.Campaign.result.Campaign.results in
        check_int "result stays total" 3 (List.length results);
        check_int "two faults cancelled, unsimulated" 2
          (List.length (List.filter is_cancelled_result results));
        (* The journal holds exactly the one completed fault... *)
        let journal2 =
          ok "resume journal"
            (Journal.start ~path ~fingerprint:compiled.Campaign.fingerprint
               ~resume:true ~faults)
        in
        check_int "journal holds only the completed fault" 1
          (Journal.restored_count journal2);
        (* ...and an uncancelled resume simulates only the other two. *)
        let local2 = Campaign.run_local ~journal:journal2 compiled in
        Journal.close journal2;
        let results2 = local2.Campaign.result.Campaign.results in
        check_int "nothing cancelled on resume" 0
          (List.length (List.filter is_cancelled_result results2));
        check_int "complete result" 3 (List.length results2);
        Sys.remove path);
    Alcotest.test_case
      "daemon: cancel a running job, salvage, exact resume on resubmit" `Slow
      (fun () ->
        Obs.Failpoint.reset ();
        Fun.protect ~finally:Obs.Failpoint.reset @@ fun () ->
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        let cfg =
          Anafaultd.Server.default_config ~socket_path
            ~work_dir:(Filename.concat dir "work")
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let compiled = ok "compile" (Campaign.compile serial_spec) in
        let fingerprint = compiled.Campaign.fingerprint in
        let faults = Array.of_list compiled.Campaign.faults in
        (* Pace the job so the cancel round-trip lands mid-campaign:
           every journal record sleeps before returning. *)
        Obs.Failpoint.arm "journal.record" (Obs.Failpoint.Delay 0.4);
        let fd = connect socket_path in
        let terminal =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
          @@ fun () ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Protocol.send oc
            (Protocol.request_to_json
               (Protocol.Submit
                  { spec = serial_spec; client = None; deadline_s = None }));
          (* Wait for the first completed fault, then cancel from a
             second client. *)
          let rec until_progress () =
            match ok "recv" (Protocol.recv ic) with
            | None -> Alcotest.fail "stream ended before progress"
            | Some json -> begin
              match ok "event" (Campaign.event_of_json ~faults json) with
              | Campaign.Progress { completed; _ } when completed >= 1 -> ()
              | Campaign.Finished _ | Campaign.Failed _ | Campaign.Cancelled _
                ->
                Alcotest.fail "campaign ended before it could be cancelled"
              | _ -> until_progress ()
            end
          in
          until_progress ();
          (match one_shot socket_path (Protocol.Cancel { fingerprint }) with
          | J.Obj fields ->
            check_bool "cancel acknowledged" true
              (List.assoc_opt "cancelled" fields = Some (J.Bool true))
          | _ -> Alcotest.fail "cancel: expected an object");
          (* The stream must end with a typed Cancelled event. *)
          let rec last () =
            match ok "recv" (Protocol.recv ic) with
            | None -> Alcotest.fail "stream ended without a terminal event"
            | Some json -> begin
              match ok "event" (Campaign.event_of_json ~faults json) with
              | Campaign.Cancelled { fingerprint = fp; reason; salvaged } ->
                (fp, reason, salvaged)
              | Campaign.Finished _ | Campaign.Failed _ ->
                Alcotest.fail "expected a Cancelled terminal event"
              | _ -> last ()
            end
          in
          last ()
        in
        let fp, reason, salvaged = terminal in
        check_string "event names the job" fingerprint fp;
        check_bool "user reason" true (contains ~needle:"user" reason);
        check_bool "salvaged at least the completed fault" true (salvaged >= 1);
        check_bool "salvaged fewer than all" true (salvaged < 3);
        (* Cancelling a finished (or unknown) fingerprint is a no-op. *)
        (match one_shot socket_path (Protocol.Cancel { fingerprint }) with
        | J.Obj fields ->
          check_bool "no job to cancel" true
            (List.assoc_opt "cancelled" fields = Some (J.Bool false))
        | _ -> Alcotest.fail "cancel: expected an object");
        (* Resubmit un-paced: never served from the cache, and only the
           un-salvaged faults simulate (the campaign journal resumes). *)
        Obs.Failpoint.reset ();
        let events = submit_and_wait ~spec:serial_spec ~faults socket_path in
        check_bool "no cache hit after a cancel" true
          (not
             (List.exists
                (function Campaign.Cache_hit _ -> true | _ -> false)
                events));
        let result = finished_of events in
        check_int "complete result" 3 (List.length result.Campaign.results);
        check_int "nothing cancelled on resume" 0
          (List.length
             (List.filter is_cancelled_result result.Campaign.results));
        let stats = one_shot socket_path Protocol.Stats in
        check_int "one cancellation counted" 1 (stat_int stats "cancelled");
        check_int "each fault simulated exactly once across both runs" 3
          (stat_int stats "faults_simulated");
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
    Alcotest.test_case "daemon: deadline_s expires a running job" `Slow
      (fun () ->
        Obs.Failpoint.reset ();
        Fun.protect ~finally:Obs.Failpoint.reset @@ fun () ->
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        let cfg =
          {
            (Anafaultd.Server.default_config ~socket_path
               ~work_dir:(Filename.concat dir "work"))
            with
            (* The server cap is looser than the submit's own deadline:
               the tighter one must win. *)
            Anafaultd.Server.job_deadline = Some 30.0;
          }
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let faults =
          Array.of_list
            (ok "compile" (Campaign.compile serial_spec)).Campaign.faults
        in
        Obs.Failpoint.arm "journal.record" (Obs.Failpoint.Delay 0.4);
        let events =
          submit_and_wait ~spec:serial_spec ~deadline_s:0.5 ~faults socket_path
        in
        (match List.rev events with
        | Campaign.Cancelled { reason; _ } :: _ ->
          check_bool "deadline reason" true (contains ~needle:"deadline" reason)
        | _ -> Alcotest.fail "expected the stream to end with Cancelled");
        Obs.Failpoint.reset ();
        check_int "cancellation counted" 1
          (stat_int (one_shot socket_path Protocol.Stats) "cancelled");
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
    Alcotest.test_case "daemon: cancelling a sharded job stops the children"
      `Slow (fun () ->
        let exe = anafault_exe () in
        let dir = daemon_socket_dir () in
        let socket_path = Filename.concat dir "d.sock" in
        (* Pace the shard children (they inherit the environment); the
           in-process daemon never loads it. *)
        Unix.putenv Obs.Failpoint.env_var "journal.record=delay:0.4";
        Fun.protect
          ~finally:(fun () -> Unix.putenv Obs.Failpoint.env_var "")
        @@ fun () ->
        let cfg =
          {
            (Anafaultd.Server.default_config ~socket_path
               ~work_dir:(Filename.concat dir "work"))
            with
            Anafaultd.Server.shards = 2;
            shard_retries = 2;
            worker_exe = Some exe;
            grace = 1.0;
          }
        in
        let server = Thread.create (fun () -> Anafaultd.Server.run cfg) () in
        let compiled = ok "compile" (Campaign.compile serial_spec) in
        let fingerprint = compiled.Campaign.fingerprint in
        let faults = Array.of_list compiled.Campaign.faults in
        let fd = connect socket_path in
        let salvaged_count =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
          @@ fun () ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Protocol.send oc
            (Protocol.request_to_json
               (Protocol.Submit
                  { spec = serial_spec; client = None; deadline_s = None }));
          let rec until_sharded () =
            match ok "recv" (Protocol.recv ic) with
            | None -> Alcotest.fail "stream ended before sharding"
            | Some json -> begin
              match ok "event" (Campaign.event_of_json ~faults json) with
              | Campaign.Sharded _ -> ()
              | Campaign.Finished _ | Campaign.Failed _ | Campaign.Cancelled _
                ->
                Alcotest.fail "campaign ended before it could be cancelled"
              | _ -> until_sharded ()
            end
          in
          until_sharded ();
          (* Let the children get into their paced slices, then cancel. *)
          Thread.delay 0.2;
          (match one_shot socket_path (Protocol.Cancel { fingerprint }) with
          | J.Obj fields ->
            check_bool "cancel acknowledged" true
              (List.assoc_opt "cancelled" fields = Some (J.Bool true))
          | _ -> Alcotest.fail "cancel: expected an object");
          let rec last () =
            match ok "recv" (Protocol.recv ic) with
            | None -> Alcotest.fail "stream ended without a terminal event"
            | Some json -> begin
              match ok "event" (Campaign.event_of_json ~faults json) with
              | Campaign.Cancelled { salvaged; _ } -> salvaged
              | Campaign.Finished _ | Campaign.Failed _ ->
                Alcotest.fail "expected a Cancelled terminal event"
              | _ -> last ()
            end
          in
          last ()
        in
        check_bool "salvage never exceeds the campaign" true
          (salvaged_count <= 3);
        (* With the pacing gone, the identical resubmission completes
           fully - the cancelled attempt was never cached. *)
        Unix.putenv Obs.Failpoint.env_var "";
        let events = submit_and_wait ~spec:serial_spec ~faults socket_path in
        check_bool "no cache hit after a cancel" true
          (not
             (List.exists
                (function Campaign.Cache_hit _ -> true | _ -> false)
                events));
        let result = finished_of events in
        check_int "complete result" 3 (List.length result.Campaign.results);
        check_bool "no fault left cancelled or crashed" true
          (List.for_all
             (fun (r : Anafault.Outcome.fault_result) ->
               match r.Anafault.Outcome.outcome with
               | Anafault.Outcome.Sim_failed
                   (Anafault.Outcome.Cancelled _ | Anafault.Outcome.Crashed _)
                 ->
                 false
               | _ -> true)
             result.Campaign.results);
        check_int "one cancellation counted" 1
          (stat_int (one_shot socket_path Protocol.Stats) "cancelled");
        ignore (one_shot socket_path Protocol.Shutdown);
        Thread.join server);
  ]

let suites =
  [
    ("campaign codecs", codec_tests);
    ("campaign fingerprint", fingerprint_tests);
    ("campaign compile", compile_tests);
    ("failure codec", failure_tests);
    ("campaign sharding", shard_tests);
    ("failpoints", failpoint_tests);
    ("queue wal", wal_tests);
    ("result cache", cache_tests);
    ("protocol robustness", protocol_tests);
    ("cancellation", cancel_tests);
    ("anafaultd", daemon_tests);
  ]
