(* Tests for the AnaFAULT driver: detection semantics on synthetic
   waveforms, the simulation loop on a small circuit, coverage math and
   reporting. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tol = Anafault.Detect.paper_tolerance

(* Synthetic waveforms on a 400-point, 4 us grid (the paper's run). *)
let grid = Array.init 400 (fun i -> 4e-6 *. float_of_int i /. 399.0)

let wave f =
  Sim.Waveform.make ~names:[| "out" |]
    ~samples:(Array.to_list (Array.map (fun t -> (t, [| f t |])) grid))

let square ~period ~delay t =
  if t < delay then 0.0
  else if Float.rem (t -. delay) period < period /. 2.0 then 5.0
  else 0.0

let nominal = wave (square ~period:0.8e-6 ~delay:0.0)

let detect f =
  Anafault.Detect.first_detection ~tolerance:tol ~signal:"out" ~nominal
    ~faulty:(wave f)

let detect_tests =
  [
    Alcotest.test_case "identical waveform is undetected" `Quick (fun () ->
        check_bool "none" true (detect (square ~period:0.8e-6 ~delay:0.0) = None));
    Alcotest.test_case "stuck low detected quickly" `Quick (fun () ->
        match detect (fun _ -> 0.0) with
        | Some t -> check_bool "early" true (t < 1.0e-6)
        | None -> Alcotest.fail "expected detection");
    Alcotest.test_case "stuck high detected" `Quick (fun () ->
        check_bool "detected" true (detect (fun _ -> 5.0) <> None));
    Alcotest.test_case "stuck mid-rail detected" `Quick (fun () ->
        (* 2.5 V differs from both rails by exactly 2.5 > 2. *)
        check_bool "detected" true (detect (fun _ -> 2.5) <> None));
    Alcotest.test_case "nothing detected before the time tolerance" `Quick (fun () ->
        match detect (fun _ -> 2.5) with
        | Some t -> check_bool "after tol_t" true (t >= tol.Anafault.Detect.tol_t)
        | None -> Alcotest.fail "expected detection");
    Alcotest.test_case "small phase shift tolerated" `Quick (fun () ->
        check_bool "none" true (detect (square ~period:0.8e-6 ~delay:0.04e-6) = None));
    Alcotest.test_case "halved frequency detected" `Quick (fun () ->
        check_bool "detected" true (detect (square ~period:1.6e-6 ~delay:0.0) <> None));
    Alcotest.test_case "doubled frequency detected" `Quick (fun () ->
        check_bool "detected" true (detect (square ~period:0.4e-6 ~delay:0.0) <> None));
    Alcotest.test_case "very fast oscillation detected via local mean" `Quick (fun () ->
        check_bool "detected" true (detect (square ~period:0.04e-6 ~delay:0.0) <> None));
    Alcotest.test_case "small level shift tolerated" `Quick (fun () ->
        let f t = square ~period:0.8e-6 ~delay:0.0 t +. 1.0 in
        check_bool "none" true (detect f = None));
    Alcotest.test_case "large level shift detected" `Quick (fun () ->
        let f t = square ~period:0.8e-6 ~delay:0.0 t +. 2.6 in
        check_bool "detected" true (detect f <> None));
    Alcotest.test_case "unknown signal raises" `Quick (fun () ->
        match
          Anafault.Detect.first_detection ~tolerance:tol ~signal:"ghost" ~nominal
            ~faulty:nominal
        with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
  ]

(* A testable circuit: NMOS inverter driven by a pulse; bridging the
   output to ground or opening the driver changes the response hard. *)
let inverter =
  (Netlist.Parser.parse
     ("inv\nVDD vdd 0 5\nVIN in 0 PULSE(0 5 0 10n 10n 1u 2u)\nRD vdd out 10k\n"
    ^ "M1 out in 0 0 NM W=20u L=1u\n.model NM NMOS VTO=1 KP=60u\n.end\n"))
    .Netlist.Parser.circuit

let tran = { Netlist.Parser.tstep = 10e-9; tstop = 4e-6; uic = true }

let config = Anafault.Simulate.default_config ~tran ~observed:"out" ()

let bridge_out_vdd =
  Faults.Fault.make ~id:"#1"
    ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "vdd" })
    ~mechanism:"metal1_short" ~prob:1e-7 ()

let open_gate =
  Faults.Fault.make ~id:"#2"
    ~kind:(Faults.Fault.Break
             { net = "in"; moved = [ { Faults.Fault.device = "M1"; port = 1 } ] })
    ~mechanism:"poly_open" ~prob:1e-8 ()

let benign_bridge =
  (* Shorting out to itself - no electrical change, never detected. *)
  Faults.Fault.make ~id:"#3"
    ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "out" })
    ~mechanism:"metal1_short" ~prob:1e-9 ()

let faults = [ bridge_out_vdd; open_gate; benign_bridge ]

let simulate_tests =
  [
    Alcotest.test_case "run detects the hard faults" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let detected, undetected, failed = Anafault.Simulate.tally run in
        check_int "detected" 2 detected;
        check_int "undetected" 1 undetected;
        check_int "failed" 0 failed);
    Alcotest.test_case "resistor model agrees with source model" `Quick (fun () ->
        let run_src = Anafault.Simulate.run config inverter faults in
        let run_res =
          Anafault.Simulate.run
            { config with model = Faults.Inject.default_resistor }
            inverter faults
        in
        let outcomes run =
          List.map
            (fun (r : Anafault.Simulate.fault_result) ->
              match r.outcome with
              | Anafault.Simulate.Detected _ -> "d"
              | Anafault.Simulate.Undetected -> "u"
              | Anafault.Simulate.Sim_failed _ -> "f")
            run.Anafault.Simulate.results
        in
        Alcotest.(check (list string)) "same outcomes" (outcomes run_src) (outcomes run_res));
    Alcotest.test_case "progress callback fires per fault" `Quick (fun () ->
        let calls = ref [] in
        let _ =
          Anafault.Simulate.run
            ~progress:(fun d t -> calls := (d, t) :: !calls)
            config inverter faults
        in
        check_int "three calls" 3 (List.length !calls);
        check_bool "totals right" true (List.for_all (fun (_, t) -> t = 3) !calls));
    Alcotest.test_case "parallel run equals serial run" `Quick (fun () ->
        let serial = Anafault.Simulate.run config inverter faults in
        let parallel = Anafault.Parsim.run ~domains:4 config inverter faults in
        let key run =
          List.map
            (fun (r : Anafault.Simulate.fault_result) ->
              ( r.fault.Faults.Fault.id,
                match r.outcome with
                | Anafault.Simulate.Detected t -> Printf.sprintf "d%.9f" t
                | Anafault.Simulate.Undetected -> "u"
                | Anafault.Simulate.Sim_failed _ -> "f" ))
            run.Anafault.Simulate.results
        in
        check_bool "same" true (key serial = key parallel));
  ]

let parsim_tests =
  [
    Alcotest.test_case "a raising fault is isolated, others complete" `Quick
      (fun () ->
        (* r_short = 0 makes every bridge inject a zero-valued resistor,
           which the engine rejects with Invalid_argument.  The failure
           must surface as Sim_failed on that fault only, in input
           order, without killing either domain. *)
        let poison =
          { config with
            model = Faults.Inject.Resistor { r_short = 0.0; r_open = 100e6 } }
        in
        let run, stats =
          Anafault.Parsim.run_with_stats ~clamp:false ~domains:2 poison inverter
            faults
        in
        let outcomes =
          List.map
            (fun (r : Anafault.Simulate.fault_result) ->
              ( r.fault.Faults.Fault.id,
                match r.outcome with
                | Anafault.Simulate.Sim_failed _ -> "f"
                | Anafault.Simulate.Detected _ -> "d"
                | Anafault.Simulate.Undetected -> "u" ))
            run.Anafault.Simulate.results
        in
        (* #1 is a real bridge (poisoned); #2 is an open; #3 bridges a
           net to itself, so nothing is injected and it survives too. *)
        Alcotest.(check (list (pair string string)))
          "order kept, failures isolated"
          [ ("#1", "f"); ("#2", "d"); ("#3", "u") ]
          outcomes;
        check_int "both domains reported" 2 (List.length stats);
        check_int "all faults accounted for" 3
          (List.fold_left
             (fun acc (d : Anafault.Parsim.domain_stats) -> acc + d.faults_done)
             0 stats));
    Alcotest.test_case "domain stats cover the whole fault list" `Quick (fun () ->
        let _, stats =
          Anafault.Parsim.run_with_stats ~clamp:false ~domains:2 config inverter
            faults
        in
        check_int "domains" 2 (List.length stats);
        check_int "faults" 3
          (List.fold_left
             (fun acc (d : Anafault.Parsim.domain_stats) -> acc + d.faults_done)
             0 stats);
        check_bool "domain ids sorted" true
          (List.map (fun (d : Anafault.Parsim.domain_stats) -> d.domain) stats
          = [ 0; 1 ]);
        List.iter
          (fun (d : Anafault.Parsim.domain_stats) ->
            check_int "indices match count" d.faults_done
              (List.length d.fault_indices))
          stats;
        check_bool "indices partition the list" true
          (List.concat_map
             (fun (d : Anafault.Parsim.domain_stats) -> d.fault_indices)
             stats
          |> List.sort Int.compare = [ 0; 1; 2 ]));
    Alcotest.test_case "run reports both wall and cpu time" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        check_bool "wall positive" true (run.Anafault.Simulate.wall_seconds > 0.0);
        check_bool "cpu non-negative" true (run.Anafault.Simulate.cpu_seconds >= 0.0);
        let s = Format.asprintf "%a" Anafault.Report.pp_summary run in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "wall labelled" true (contains s "wall time");
        check_bool "cpu labelled" true (contains s "cpu time"));
  ]

let coverage_tests =
  [
    Alcotest.test_case "coverage curve is monotone to the final value" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let curve = Anafault.Coverage.curve run ~points:50 in
        let values = List.map snd curve in
        let rec monotone = function
          | a :: (b :: _ as rest) -> a <= b && monotone rest
          | [ _ ] | [] -> true
        in
        check_bool "monotone" true (monotone values);
        Alcotest.(check (float 1e-9))
          "final matches" (Anafault.Coverage.final_percent run)
          (List.nth values (List.length values - 1)));
    Alcotest.test_case "final percent counts detections only" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        Alcotest.(check (float 0.1)) "2/3" (200.0 /. 3.0)
          (Anafault.Coverage.final_percent run));
    Alcotest.test_case "weighted percent favours likely faults" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        (* The undetected fault has the smallest probability, so weighted
           coverage exceeds the raw percentage. *)
        check_bool "weighted higher" true
          (Anafault.Coverage.weighted_percent run
          > Anafault.Coverage.final_percent run));
    Alcotest.test_case "time_to_percent" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        match Anafault.Coverage.time_to_percent run 50.0 with
        | Some t -> check_bool "within test" true (t > 0.0 && t <= 4e-6)
        | None -> Alcotest.fail "expected a time");
  ]

let report_tests =
  [
    Alcotest.test_case "csv has a line per fault plus header" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let lines =
          String.split_on_char '\n' (Anafault.Report.csv run)
          |> List.filter (fun l -> l <> "")
        in
        check_int "lines" 4 (List.length lines));
    Alcotest.test_case "summary and table render" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        check_bool "summary" true
          (String.length (Format.asprintf "%a" Anafault.Report.pp_summary run) > 0);
        check_bool "table" true
          (String.length (Format.asprintf "%a" Anafault.Report.pp_table run) > 0);
        check_bool "plot" true (String.length (Anafault.Report.coverage_plot run) > 0));
    Alcotest.test_case "overview groups by mechanism" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let s = Format.asprintf "%a" Anafault.Report.pp_overview run in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "mech listed" true (contains s "metal1_short");
        check_bool "header" true (contains s "mean t_detect"));
    Alcotest.test_case "waveform csv export" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let csv = Sim.Waveform.to_csv run.Anafault.Simulate.nominal in
        let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
        Alcotest.(check int) "rows" (1 + Sim.Waveform.length run.Anafault.Simulate.nominal)
          (List.length lines));
    Alcotest.test_case "ascii plot renders axes and legend" `Quick (fun () ->
        let s =
          Anafault.Ascii_plot.render
            ~series:[ ("a", [ (0.0, 0.0); (1.0, 1.0) ]); ("b", [ (0.0, 1.0); (1.0, 0.0) ]) ]
            ()
        in
        check_bool "nonempty" true (String.length s > 100));
    Alcotest.test_case "ascii plot tolerates empty data" `Quick (fun () ->
        Alcotest.(check string) "msg" "(no data)\n"
          (Anafault.Ascii_plot.render ~series:[ ("x", []) ] ()));
  ]

let suites =
  [
    ("anafault.detect", detect_tests);
    ("anafault.simulate", simulate_tests);
    ("anafault.parsim", parsim_tests);
    ("anafault.coverage", coverage_tests);
    ("anafault.report", report_tests);
  ]
