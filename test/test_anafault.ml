(* Tests for the AnaFAULT driver: detection semantics on synthetic
   waveforms, the simulation loop on a small circuit, coverage math and
   reporting. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tol = Anafault.Detect.paper_tolerance

(* Synthetic waveforms on a 400-point, 4 us grid (the paper's run). *)
let grid = Array.init 400 (fun i -> 4e-6 *. float_of_int i /. 399.0)

let wave f =
  Sim.Waveform.make ~names:[| "out" |]
    ~samples:(Array.to_list (Array.map (fun t -> (t, [| f t |])) grid))

let square ~period ~delay t =
  if t < delay then 0.0
  else if Float.rem (t -. delay) period < period /. 2.0 then 5.0
  else 0.0

let nominal = wave (square ~period:0.8e-6 ~delay:0.0)

let detect f =
  Anafault.Detect.first_detection ~tolerance:tol ~signal:"out" ~nominal
    ~faulty:(wave f)

let detect_tests =
  [
    Alcotest.test_case "identical waveform is undetected" `Quick (fun () ->
        check_bool "none" true (detect (square ~period:0.8e-6 ~delay:0.0) = None));
    Alcotest.test_case "stuck low detected quickly" `Quick (fun () ->
        match detect (fun _ -> 0.0) with
        | Some t -> check_bool "early" true (t < 1.0e-6)
        | None -> Alcotest.fail "expected detection");
    Alcotest.test_case "stuck high detected" `Quick (fun () ->
        check_bool "detected" true (detect (fun _ -> 5.0) <> None));
    Alcotest.test_case "stuck mid-rail detected" `Quick (fun () ->
        (* 2.5 V differs from both rails by exactly 2.5 > 2. *)
        check_bool "detected" true (detect (fun _ -> 2.5) <> None));
    Alcotest.test_case "nothing detected before the time tolerance" `Quick (fun () ->
        match detect (fun _ -> 2.5) with
        | Some t -> check_bool "after tol_t" true (t >= tol.Anafault.Detect.tol_t)
        | None -> Alcotest.fail "expected detection");
    Alcotest.test_case "small phase shift tolerated" `Quick (fun () ->
        check_bool "none" true (detect (square ~period:0.8e-6 ~delay:0.04e-6) = None));
    Alcotest.test_case "halved frequency detected" `Quick (fun () ->
        check_bool "detected" true (detect (square ~period:1.6e-6 ~delay:0.0) <> None));
    Alcotest.test_case "doubled frequency detected" `Quick (fun () ->
        check_bool "detected" true (detect (square ~period:0.4e-6 ~delay:0.0) <> None));
    Alcotest.test_case "very fast oscillation detected via local mean" `Quick (fun () ->
        check_bool "detected" true (detect (square ~period:0.04e-6 ~delay:0.0) <> None));
    Alcotest.test_case "small level shift tolerated" `Quick (fun () ->
        let f t = square ~period:0.8e-6 ~delay:0.0 t +. 1.0 in
        check_bool "none" true (detect f = None));
    Alcotest.test_case "large level shift detected" `Quick (fun () ->
        let f t = square ~period:0.8e-6 ~delay:0.0 t +. 2.6 in
        check_bool "detected" true (detect f <> None));
    Alcotest.test_case "unknown signal raises" `Quick (fun () ->
        match
          Anafault.Detect.first_detection ~tolerance:tol ~signal:"ghost" ~nominal
            ~faulty:nominal
        with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    Alcotest.test_case "divergence within tol_t of tstop is still detected" `Quick
      (fun () ->
        (* The run is still open (and more than half a window long) when
           the observation window ends: the tail flush must report it at
           the last sample instead of losing it to window truncation. *)
        let f t =
          square ~period:0.8e-6 ~delay:0.0 t
          +. (if t >= 3.85e-6 then 3.0 else 0.0)
        in
        match detect f with
        | Some t -> check_bool "at the tail" true (t >= 3.9e-6)
        | None -> Alcotest.fail "late divergence must not be lost");
    Alcotest.test_case "a sub-half-window tail sliver is still tolerated" `Quick
      (fun () ->
        (* Divergence covering only the last few samples (well under half
           the window) is indistinguishable from end-of-grid phase
           wobble, and must not be flushed. *)
        let f t =
          square ~period:0.8e-6 ~delay:0.0 t
          +. (if t >= 3.97e-6 then 3.0 else 0.0)
        in
        check_bool "none" true (detect f = None));
    Alcotest.test_case "a short mid-run blip is still tolerated" `Quick (fun () ->
        (* The tail flush only applies to a run that reaches the end of
           the grid; a closed sub-window divergence stays undetected. *)
        let f t =
          square ~period:0.8e-6 ~delay:0.0 t
          +. (if t >= 2.0e-6 && t < 2.03e-6 then 3.0 else 0.0)
        in
        check_bool "none" true (detect f = None));
  ]

(* --- Guarded analysis and the prefix-decidable detector --------------- *)

let one_sample_wave = Sim.Waveform.make ~names:[| "out" |] ~samples:[ (0.0, [| 0.0 |]) ]

let flat_grid_wave =
  Sim.Waveform.make ~names:[| "out" |]
    ~samples:[ (1.0, [| 0.0 |]); (1.0, [| 0.0 |]); (1.0, [| 0.0 |]) ]

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected Error" what

let analyse_tests =
  [
    Alcotest.test_case "analyse agrees with first_detection" `Quick (fun () ->
        let faulty = wave (fun _ -> 0.0) in
        let expected =
          Anafault.Detect.first_detection ~tolerance:tol ~signal:"out" ~nominal
            ~faulty
        in
        (match
           Anafault.Detect.analyse ~tolerance:tol ~signal:"out" ~nominal ~faulty
         with
        | Ok got -> check_bool "same" true (got = expected)
        | Error msg -> Alcotest.fail msg));
    Alcotest.test_case "degenerate inputs come back as Error, not exceptions"
      `Quick (fun () ->
        expect_error "short nominal"
          (Anafault.Detect.analyse ~tolerance:tol ~signal:"out"
             ~nominal:one_sample_wave ~faulty:nominal);
        expect_error "flat time grid"
          (Anafault.Detect.analyse ~tolerance:tol ~signal:"out"
             ~nominal:flat_grid_wave ~faulty:nominal);
        expect_error "empty faulty"
          (Anafault.Detect.analyse ~tolerance:tol ~signal:"out" ~nominal
             ~faulty:(Sim.Waveform.make ~names:[| "out" |] ~samples:[])));
    Alcotest.test_case "non-finite samples come back as typed errors" `Quick
      (fun () ->
        let nan_wave =
          Sim.Waveform.make ~names:[| "out" |]
            ~samples:
              [ (0.0, [| 0.0 |]); (2.0e-6, [| Float.nan |]); (4.0e-6, [| 0.0 |]) ]
        in
        (match
           Anafault.Detect.analyse ~tolerance:tol ~signal:"out"
             ~nominal:nan_wave ~faulty:nominal
         with
        | Error msg ->
          check_bool "names the nominal side" true
            (msg = "nominal response contains non-finite samples")
        | Ok _ -> Alcotest.fail "NaN nominal: expected Error");
        (match
           Anafault.Detect.analyse ~tolerance:tol ~signal:"out" ~nominal
             ~faulty:nan_wave
         with
        | Error msg ->
          check_bool "names the faulty side" true
            (msg = "faulty response contains non-finite samples")
        | Ok _ -> Alcotest.fail "NaN faulty: expected Error");
        match
          Anafault.Detect.Incremental.create ~tolerance:tol
            ~times:[| 0.0; 1.0; 2.0 |] ~nom:[| 0.0; Float.infinity; 0.0 |]
        with
        | Error _ -> ()
        | Ok _ ->
          Alcotest.fail "Inf nominal: expected Error from Incremental.create");
    Alcotest.test_case "analyse keeps Not_found for a missing signal" `Quick
      (fun () ->
        match
          Anafault.Detect.analyse ~tolerance:tol ~signal:"ghost" ~nominal
            ~faulty:nominal
        with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    Alcotest.test_case "incremental detector refuses degenerate grids" `Quick
      (fun () ->
        expect_error "one point"
          (Anafault.Detect.Incremental.create ~tolerance:tol ~times:[| 0.0 |]
             ~nom:[| 0.0 |]);
        expect_error "flat grid"
          (Anafault.Detect.Incremental.create ~tolerance:tol
             ~times:[| 1.0; 1.0; 1.0 |] ~nom:[| 0.0; 0.0; 0.0 |]);
        expect_error "length mismatch"
          (Anafault.Detect.Incremental.create ~tolerance:tol
             ~times:[| 0.0; 1.0 |] ~nom:[| 0.0 |]));
  ]

(* Feed the incremental detector a faulty function over the shared grid,
   stopping at the first final verdict (the batch loop's drop point);
   returns the verdict and how many samples were needed. *)
let incremental_verdict f =
  let nomv = Sim.Waveform.samples nominal "out" in
  match Anafault.Detect.Incremental.create ~tolerance:tol ~times:grid ~nom:nomv with
  | Error msg -> Alcotest.fail msg
  | Ok st ->
    let w = wave f in
    let n = Array.length grid in
    let rec go i =
      if i >= n then (Anafault.Detect.Incremental.verdict st, i)
      else
        match
          Anafault.Detect.Incremental.feed st (Sim.Waveform.value_at w "out" grid.(i))
        with
        | Anafault.Detect.Incremental.Pending -> go (i + 1)
        | v -> (v, i + 1)
    in
    go 0

let incremental_cases =
  [
    ("identical", square ~period:0.8e-6 ~delay:0.0);
    ("stuck low", fun _ -> 0.0);
    ("stuck high", fun _ -> 5.0);
    ("stuck mid-rail", fun _ -> 2.5);
    ("small phase shift", square ~period:0.8e-6 ~delay:0.04e-6);
    ("halved frequency", square ~period:1.6e-6 ~delay:0.0);
    ("doubled frequency", square ~period:0.4e-6 ~delay:0.0);
    ("fast oscillation", square ~period:0.04e-6 ~delay:0.0);
    ("small level shift", fun t -> square ~period:0.8e-6 ~delay:0.0 t +. 1.0);
    ("large level shift", fun t -> square ~period:0.8e-6 ~delay:0.0 t +. 2.6);
    ( "late divergence",
      fun t ->
        square ~period:0.8e-6 ~delay:0.0 t
        +. (if t >= 3.85e-6 then 3.0 else 0.0) );
    ( "tail sliver",
      fun t ->
        square ~period:0.8e-6 ~delay:0.0 t
        +. (if t >= 3.97e-6 then 3.0 else 0.0) );
    ( "mid-run blip",
      fun t ->
        square ~period:0.8e-6 ~delay:0.0 t
        +. (if t >= 2.0e-6 && t < 2.03e-6 then 3.0 else 0.0) );
  ]

let incremental_tests =
  [
    Alcotest.test_case "incremental verdict equals the batch detector" `Quick
      (fun () ->
        List.iter
          (fun (name, f) ->
            let expected = detect f in
            let got, _ = incremental_verdict f in
            match (expected, got) with
            | Some t, Anafault.Detect.Incremental.Detected i ->
              Alcotest.(check (float 0.0)) name t grid.(i)
            | None, Anafault.Detect.Incremental.Clear -> ()
            | None, Anafault.Detect.Incremental.Pending ->
              Alcotest.failf "%s: still pending after the full grid" name
            | ( Some _,
                ( Anafault.Detect.Incremental.Clear
                | Anafault.Detect.Incremental.Pending ) ) ->
              Alcotest.failf "%s: incremental missed the detection" name
            | None, Anafault.Detect.Incremental.Detected i ->
              Alcotest.failf "%s: spurious detection at index %d" name i)
          incremental_cases);
    Alcotest.test_case "a stuck fault is decided early" `Quick (fun () ->
        let v, fed = incremental_verdict (fun _ -> 0.0) in
        (match v with
        | Anafault.Detect.Incremental.Detected _ -> ()
        | _ -> Alcotest.fail "expected a detection");
        check_bool "well before the end of the grid" true
          (fed < Array.length grid / 2));
    Alcotest.test_case "feeding past a final verdict raises" `Quick (fun () ->
        let nomv = Sim.Waveform.samples nominal "out" in
        match
          Anafault.Detect.Incremental.create ~tolerance:tol ~times:grid ~nom:nomv
        with
        | Error msg -> Alcotest.fail msg
        | Ok st ->
          let rec drive i =
            match Anafault.Detect.Incremental.feed st 0.0 with
            | Anafault.Detect.Incremental.Pending -> drive (i + 1)
            | _ -> ()
          in
          drive 0;
          (match Anafault.Detect.Incremental.feed st 0.0 with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

(* A testable circuit: NMOS inverter driven by a pulse; bridging the
   output to ground or opening the driver changes the response hard. *)
let inverter =
  (Netlist.Parser.parse
     ("inv\nVDD vdd 0 5\nVIN in 0 PULSE(0 5 0 10n 10n 1u 2u)\nRD vdd out 10k\n"
    ^ "M1 out in 0 0 NM W=20u L=1u\n.model NM NMOS VTO=1 KP=60u\n.end\n"))
    .Netlist.Parser.circuit

let tran = { Netlist.Parser.tstep = 10e-9; tstop = 4e-6; uic = true }

let config = Anafault.Simulate.default_config ~tran ~observed:"out" ()

let bridge_out_vdd =
  Faults.Fault.make ~id:"#1"
    ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "vdd" })
    ~mechanism:"metal1_short" ~prob:1e-7 ()

let open_gate =
  Faults.Fault.make ~id:"#2"
    ~kind:(Faults.Fault.Break
             { net = "in"; moved = [ { Faults.Fault.device = "M1"; port = 1 } ] })
    ~mechanism:"poly_open" ~prob:1e-8 ()

let benign_bridge =
  (* Shorting out to itself - no electrical change, never detected. *)
  Faults.Fault.make ~id:"#3"
    ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "out" })
    ~mechanism:"metal1_short" ~prob:1e-9 ()

let faults = [ bridge_out_vdd; open_gate; benign_bridge ]

let simulate_tests =
  [
    Alcotest.test_case "run detects the hard faults" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let detected, undetected, failed = Anafault.Simulate.tally run in
        check_int "detected" 2 detected;
        check_int "undetected" 1 undetected;
        check_int "failed" 0 failed);
    Alcotest.test_case "resistor model agrees with source model" `Quick (fun () ->
        let run_src = Anafault.Simulate.run config inverter faults in
        let run_res =
          Anafault.Simulate.run
            { config with model = Faults.Inject.default_resistor }
            inverter faults
        in
        let outcomes run =
          List.map
            (fun (r : Anafault.Simulate.fault_result) ->
              match r.outcome with
              | Anafault.Simulate.Detected _ -> "d"
              | Anafault.Simulate.Undetected -> "u"
              | Anafault.Simulate.Sim_failed _ -> "f")
            run.Anafault.Simulate.results
        in
        Alcotest.(check (list string)) "same outcomes" (outcomes run_src) (outcomes run_res));
    Alcotest.test_case "progress callback fires per fault" `Quick (fun () ->
        let calls = ref [] in
        let _ =
          Anafault.Simulate.run
            ~progress:(fun d t -> calls := (d, t) :: !calls)
            config inverter faults
        in
        check_int "three calls" 3 (List.length !calls);
        check_bool "totals right" true (List.for_all (fun (_, t) -> t = 3) !calls));
    Alcotest.test_case "parallel run equals serial run" `Quick (fun () ->
        let serial = Anafault.Simulate.run config inverter faults in
        let parallel = Anafault.Parsim.run ~domains:4 config inverter faults in
        let key run =
          List.map
            (fun (r : Anafault.Simulate.fault_result) ->
              ( r.fault.Faults.Fault.id,
                match r.outcome with
                | Anafault.Simulate.Detected t -> Printf.sprintf "d%.9f" t
                | Anafault.Simulate.Undetected -> "u"
                | Anafault.Simulate.Sim_failed _ -> "f" ))
            run.Anafault.Simulate.results
        in
        check_bool "same" true (key serial = key parallel));
  ]

let parsim_tests =
  [
    Alcotest.test_case "a raising fault is isolated, others complete" `Quick
      (fun () ->
        (* r_short = 0 makes every bridge inject a zero-valued resistor,
           which the engine rejects with Invalid_argument.  The failure
           must surface as Sim_failed on that fault only, in input
           order, without killing either domain. *)
        let poison =
          { config with
            model = Faults.Inject.Resistor { r_short = 0.0; r_open = 100e6 } }
        in
        let run, stats =
          Anafault.Parsim.run_with_stats ~clamp:false ~domains:2 poison inverter
            faults
        in
        let outcomes =
          List.map
            (fun (r : Anafault.Simulate.fault_result) ->
              ( r.fault.Faults.Fault.id,
                match r.outcome with
                | Anafault.Simulate.Sim_failed _ -> "f"
                | Anafault.Simulate.Detected _ -> "d"
                | Anafault.Simulate.Undetected -> "u" ))
            run.Anafault.Simulate.results
        in
        (* #1 is a real bridge (poisoned); #2 is an open; #3 bridges a
           net to itself, so nothing is injected and it survives too. *)
        Alcotest.(check (list (pair string string)))
          "order kept, failures isolated"
          [ ("#1", "f"); ("#2", "d"); ("#3", "u") ]
          outcomes;
        check_int "both domains reported" 2 (List.length stats);
        check_int "all faults accounted for" 3
          (List.fold_left
             (fun acc (d : Anafault.Parsim.domain_stats) -> acc + d.faults_done)
             0 stats));
    Alcotest.test_case "domain stats cover the whole fault list" `Quick (fun () ->
        let _, stats =
          Anafault.Parsim.run_with_stats ~clamp:false ~domains:2 config inverter
            faults
        in
        check_int "domains" 2 (List.length stats);
        check_int "faults" 3
          (List.fold_left
             (fun acc (d : Anafault.Parsim.domain_stats) -> acc + d.faults_done)
             0 stats);
        check_bool "domain ids sorted" true
          (List.map (fun (d : Anafault.Parsim.domain_stats) -> d.domain) stats
          = [ 0; 1 ]);
        List.iter
          (fun (d : Anafault.Parsim.domain_stats) ->
            check_int "indices match count" d.faults_done
              (List.length d.fault_indices))
          stats;
        check_bool "indices partition the list" true
          (List.concat_map
             (fun (d : Anafault.Parsim.domain_stats) -> d.fault_indices)
             stats
          |> List.sort Int.compare = [ 0; 1; 2 ]));
    Alcotest.test_case "run reports both wall and cpu time" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        check_bool "wall positive" true (run.Anafault.Simulate.wall_seconds > 0.0);
        check_bool "cpu non-negative" true (run.Anafault.Simulate.cpu_seconds >= 0.0);
        let s = Format.asprintf "%a" Anafault.Report.pp_summary run in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "wall labelled" true (contains s "wall time");
        check_bool "cpu labelled" true (contains s "cpu time"));
  ]

let coverage_tests =
  [
    Alcotest.test_case "coverage curve is monotone to the final value" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let curve = Anafault.Coverage.curve run ~points:50 in
        let values = List.map snd curve in
        let rec monotone = function
          | a :: (b :: _ as rest) -> a <= b && monotone rest
          | [ _ ] | [] -> true
        in
        check_bool "monotone" true (monotone values);
        Alcotest.(check (float 1e-9))
          "final matches" (Anafault.Coverage.final_percent run)
          (List.nth values (List.length values - 1)));
    Alcotest.test_case "final percent counts detections only" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        Alcotest.(check (float 0.1)) "2/3" (200.0 /. 3.0)
          (Anafault.Coverage.final_percent run));
    Alcotest.test_case "weighted percent favours likely faults" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        (* The undetected fault has the smallest probability, so weighted
           coverage exceeds the raw percentage. *)
        check_bool "weighted higher" true
          (Anafault.Coverage.weighted_percent run
          > Anafault.Coverage.final_percent run));
    Alcotest.test_case "time_to_percent" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        match Anafault.Coverage.time_to_percent run 50.0 with
        | Some t -> check_bool "within test" true (t > 0.0 && t <= 4e-6)
        | None -> Alcotest.fail "expected a time");
  ]

let report_tests =
  [
    Alcotest.test_case "csv has a line per fault plus header" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let lines =
          String.split_on_char '\n' (Anafault.Report.csv run)
          |> List.filter (fun l -> l <> "")
        in
        check_int "lines" 4 (List.length lines));
    Alcotest.test_case "summary and table render" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        check_bool "summary" true
          (String.length (Format.asprintf "%a" Anafault.Report.pp_summary run) > 0);
        check_bool "table" true
          (String.length (Format.asprintf "%a" Anafault.Report.pp_table run) > 0);
        check_bool "plot" true (String.length (Anafault.Report.coverage_plot run) > 0));
    Alcotest.test_case "overview groups by mechanism" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let s = Format.asprintf "%a" Anafault.Report.pp_overview run in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "mech listed" true (contains s "metal1_short");
        check_bool "header" true (contains s "mean t_detect"));
    Alcotest.test_case "waveform csv export" `Quick (fun () ->
        let run = Anafault.Simulate.run config inverter faults in
        let csv = Sim.Waveform.to_csv run.Anafault.Simulate.nominal in
        let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
        Alcotest.(check int) "rows" (1 + Sim.Waveform.length run.Anafault.Simulate.nominal)
          (List.length lines));
    Alcotest.test_case "ascii plot renders axes and legend" `Quick (fun () ->
        let s =
          Anafault.Ascii_plot.render
            ~series:[ ("a", [ (0.0, 0.0); (1.0, 1.0) ]); ("b", [ (0.0, 1.0); (1.0, 0.0) ]) ]
            ()
        in
        check_bool "nonempty" true (String.length s > 100));
    Alcotest.test_case "ascii plot tolerates empty data" `Quick (fun () ->
        Alcotest.(check string) "msg" "(no data)\n"
          (Anafault.Ascii_plot.render ~series:[ ("x", []) ] ()));
  ]

(* --- Typed failure taxonomy, retry ladder, budgets, journal ----------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let counter_total events name =
  List.fold_left
    (fun acc -> function
      | Obs.Count { name = n'; n; _ } when n' = name -> acc + n
      | _ -> acc)
    0 events

(* Detection outcomes keyed per fault with full float precision, for
   bit-for-bit comparisons across runs and journal round-trips. *)
let key (run : Anafault.Simulate.run) =
  List.map
    (fun (r : Anafault.Simulate.fault_result) ->
      ( r.fault.Faults.Fault.id,
        match r.outcome with
        | Anafault.Simulate.Detected t -> Printf.sprintf "d%.17g" t
        | Anafault.Simulate.Undetected -> "u"
        | Anafault.Simulate.Sim_failed f -> "f:" ^ Anafault.Outcome.failure_kind f ))
    run.Anafault.Simulate.results

(* Bridging the pulse input to the supply under the source model closes
   a loop of three ideal voltage sources with inconsistent values while
   the pulse is low: Newton cannot converge at any step size, so the
   baseline attempt always fails with a retryable kernel failure. *)
let singular_bridge =
  Faults.Fault.make ~id:"#S"
    ~kind:(Faults.Fault.Bridge { net_a = "in"; net_b = "vdd" })
    ~mechanism:"metal1_short" ~prob:1e-7 ()

let all_failures =
  [
    Anafault.Outcome.Dc_no_convergence "a";
    Anafault.Outcome.Tran_step_underflow "b";
    Anafault.Outcome.Singular_matrix "c";
    Anafault.Outcome.Bad_injection "d";
    Anafault.Outcome.Budget_exceeded "e";
    Anafault.Outcome.Cancelled "g";
    Anafault.Outcome.Crashed "f";
  ]

let taxonomy_tests =
  [
    Alcotest.test_case "failure kinds round-trip through their tags" `Quick (fun () ->
        List.iter
          (fun f ->
            match
              Anafault.Outcome.failure_of_kind
                (Anafault.Outcome.failure_kind f)
                (Anafault.Outcome.failure_detail f)
            with
            | Ok f' ->
              check_bool (Anafault.Outcome.failure_kind f) true (f = f')
            | Error msg -> Alcotest.fail msg)
          all_failures);
    Alcotest.test_case "only kernel convergence failures are retryable" `Quick
      (fun () ->
        let expected = function
          | Anafault.Outcome.Dc_no_convergence _ | Anafault.Outcome.Tran_step_underflow _
          | Anafault.Outcome.Singular_matrix _ -> true
          | Anafault.Outcome.Bad_injection _ | Anafault.Outcome.Budget_exceeded _
          | Anafault.Outcome.Cancelled _ | Anafault.Outcome.Crashed _ -> false
        in
        List.iter
          (fun f ->
            check_bool (Anafault.Outcome.failure_kind f) (expected f)
              (Anafault.Outcome.retryable f))
          all_failures);
    Alcotest.test_case "everything but a bad injection poisons the session" `Quick
      (fun () ->
        List.iter
          (fun f ->
            check_bool (Anafault.Outcome.failure_kind f)
              (match f with Anafault.Outcome.Bad_injection _ -> false | _ -> true)
              (Anafault.Outcome.poisons_session f))
          all_failures);
    Alcotest.test_case "retry strategies round-trip through strings" `Quick (fun () ->
        List.iter
          (fun s ->
            match
              Anafault.Outcome.strategy_of_string (Anafault.Outcome.strategy_to_string s)
            with
            | Ok s' -> check_bool (Anafault.Outcome.strategy_to_string s) true (s = s')
            | Error msg -> Alcotest.fail msg)
          [
            Anafault.Outcome.Baseline;
            Anafault.Outcome.Swap_model;
            Anafault.Outcome.Cut_tstep 0.25;
            Anafault.Outcome.Raise_gmin 1e3;
            Anafault.Outcome.Relax_reltol 10.0;
          ];
        check_bool "bare name takes the default factor" true
          (Anafault.Outcome.strategy_of_string "cut-tstep"
          = Ok (Anafault.Outcome.Cut_tstep 0.1));
        check_bool "unknown strategy rejected" true
          (Result.is_error (Anafault.Outcome.strategy_of_string "pray")));
    Alcotest.test_case "results round-trip through the journal codec" `Quick (fun () ->
        let r =
          {
            Anafault.Outcome.fault = bridge_out_vdd;
            outcome = Anafault.Outcome.Detected 1.2345678901234566e-06;
            attempts =
              [
                {
                  Anafault.Outcome.strategy = Anafault.Outcome.Baseline;
                  failure = Some (Anafault.Outcome.Singular_matrix "no unique solution");
                };
                { Anafault.Outcome.strategy = Anafault.Outcome.Swap_model; failure = None };
              ];
            stats =
              { Sim.Engine.newton_iterations = 905; accepted_steps = 412; rejected_steps = 3 };
            cpu_seconds = 0.00312;
          }
        in
        match
          Anafault.Outcome.result_of_json ~faults:[| bridge_out_vdd |]
            (Anafault.Outcome.result_to_json ~index:0 r)
        with
        | Ok (0, r') -> check_bool "bit-for-bit" true (r = r')
        | Ok (i, _) -> Alcotest.failf "wrong index %d" i
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "codec rejects a result for the wrong fault" `Quick (fun () ->
        let r =
          {
            Anafault.Outcome.fault = bridge_out_vdd;
            outcome = Anafault.Outcome.Undetected;
            attempts = [];
            stats = Anafault.Simulate.zero_stats;
            cpu_seconds = 0.0;
          }
        in
        let json = Anafault.Outcome.result_to_json ~index:0 r in
        check_bool "id mismatch" true
          (Result.is_error (Anafault.Outcome.result_of_json ~faults:[| open_gate |] json));
        check_bool "index out of range" true
          (Result.is_error (Anafault.Outcome.result_of_json ~faults:[||] json)));
  ]

let run_budgeted budget =
  let options = { Sim.Engine.default_options with Sim.Engine.budget } in
  ignore
    (Sim.Engine.run ~options inverter
       (Sim.Engine.Analysis.Tran { tstep = 10e-9; tstop = 4e-6; uic = true }))

let expect_budget_exceeded what budget =
  match run_budgeted budget with
  | exception Sim.Engine.Sim_error (Sim.Engine.Budget_exceeded, _) -> ()
  | () -> Alcotest.failf "%s: expected Budget_exceeded, simulation completed" what
  | exception e -> Alcotest.failf "%s: unexpected %s" what (Printexc.to_string e)

(* A budget campaign: same inverter, 1000x longer transient.  The step
   size is capped at tstep, so every full simulation needs >= 400k
   accepted steps - far beyond any 50 ms wall-clock deadline - while the
   unbudgeted nominal run still completes. *)
let tran_slow = { Netlist.Parser.tstep = 10e-9; tstop = 4e-3; uic = true }

let deadline_options =
  {
    Sim.Engine.default_options with
    Sim.Engine.budget =
      { Sim.Engine.unlimited with Sim.Engine.deadline_seconds = Some 0.05 };
  }

let check_all_budget_exceeded (run : Anafault.Simulate.run) =
  List.iter
    (fun (r : Anafault.Simulate.fault_result) ->
      match r.outcome with
      | Anafault.Simulate.Sim_failed (Anafault.Simulate.Budget_exceeded _) -> ()
      | o ->
        Alcotest.failf "%s: expected Budget_exceeded, got %s" r.fault.Faults.Fault.id
          (Anafault.Outcome.outcome_to_string o))
    run.Anafault.Simulate.results

let budget_tests =
  [
    Alcotest.test_case "transient-step budget trips" `Quick (fun () ->
        expect_budget_exceeded "steps"
          { Sim.Engine.unlimited with Sim.Engine.max_steps = Some 5 });
    Alcotest.test_case "newton-iteration budget trips" `Quick (fun () ->
        expect_budget_exceeded "iters"
          { Sim.Engine.unlimited with Sim.Engine.max_newton_iterations = Some 10 });
    Alcotest.test_case "wall-clock deadline trips" `Quick (fun () ->
        expect_budget_exceeded "deadline"
          { Sim.Engine.unlimited with Sim.Engine.deadline_seconds = Some 0.0 });
    Alcotest.test_case "unlimited budget never trips" `Quick (fun () ->
        run_budgeted Sim.Engine.unlimited);
    Alcotest.test_case "50 ms deadline bounds every fault, serial" `Slow (fun () ->
        let config =
          Anafault.Simulate.default_config ~tran:tran_slow ~observed:"out"
            ~sim_options:deadline_options ~retries:[] ()
        in
        let t0 = Unix.gettimeofday () in
        let run = Anafault.Simulate.run config inverter faults in
        check_all_budget_exceeded run;
        check_bool "terminated promptly" true (Unix.gettimeofday () -. t0 < 60.0));
    Alcotest.test_case "50 ms deadline bounds every fault, 4 domains" `Slow (fun () ->
        let config =
          Anafault.Simulate.default_config ~tran:tran_slow ~observed:"out"
            ~sim_options:deadline_options ~retries:[] ~domains:4 ()
        in
        let t0 = Unix.gettimeofday () in
        let run, _ = Anafault.Parsim.execute config inverter faults in
        check_all_budget_exceeded run;
        check_bool "terminated promptly" true (Unix.gettimeofday () -. t0 < 60.0));
    Alcotest.test_case "the nominal run is exempt from the fault budget" `Quick
      (fun () ->
        (* A zero deadline would kill every simulation it applies to; the
           campaign must still produce a nominal waveform. *)
        let options =
          {
            Sim.Engine.default_options with
            Sim.Engine.budget =
              { Sim.Engine.unlimited with Sim.Engine.deadline_seconds = Some 0.0 };
          }
        in
        let config =
          Anafault.Simulate.default_config ~tran ~observed:"out" ~sim_options:options
            ~retries:[] ()
        in
        let run = Anafault.Simulate.run config inverter faults in
        check_bool "nominal produced" true
          (Sim.Waveform.length run.Anafault.Simulate.nominal > 0);
        check_all_budget_exceeded run);
  ]

let retry_tests =
  [
    Alcotest.test_case "swap-model retry rescues a singular injection" `Quick
      (fun () ->
        (* Default ladder: [Swap_model]. *)
        let run = Anafault.Simulate.run config inverter [ singular_bridge ] in
        let r = List.hd run.Anafault.Simulate.results in
        (match r.outcome with
        | Anafault.Simulate.Sim_failed f ->
          Alcotest.failf "retry should have won: %s"
            (Anafault.Simulate.failure_to_string f)
        | Anafault.Simulate.Detected _ | Anafault.Simulate.Undetected -> ());
        check_int "two attempts" 2 (List.length r.attempts);
        (match r.attempts with
        | [ baseline; winner ] ->
          check_bool "baseline strategy" true
            (baseline.strategy = Anafault.Outcome.Baseline);
          (match baseline.failure with
          | Some f ->
            check_bool "original failure message kept" true
              (String.length (Anafault.Simulate.failure_to_string f) > 0)
          | None -> Alcotest.fail "baseline should have failed");
          check_bool "winning strategy recorded" true
            (winner.strategy = Anafault.Outcome.Swap_model && winner.failure = None)
        | _ -> Alcotest.fail "expected exactly two attempts"));
    Alcotest.test_case "every failed rung keeps its own message" `Quick (fun () ->
        (* Relaxing reltol cannot fix an insoluble system: both rungs
           fail and both failures must be reported. *)
        let config = { config with retries = [ Anafault.Outcome.Relax_reltol 10.0 ] } in
        let run = Anafault.Simulate.run config inverter [ singular_bridge ] in
        let r = List.hd run.Anafault.Simulate.results in
        let failure_kind =
          match r.outcome with
          | Anafault.Simulate.Sim_failed f -> Anafault.Outcome.failure_kind f
          | _ -> Alcotest.fail "expected a failed simulation"
        in
        check_int "two attempts" 2 (List.length r.attempts);
        List.iter
          (fun (a : Anafault.Simulate.attempt) ->
            match a.failure with
            | Some f ->
              check_bool "non-empty message" true
                (String.length (Anafault.Simulate.failure_to_string f) > 0)
            | None -> Alcotest.fail "every rung should have failed")
          r.attempts;
        let table = Format.asprintf "%a" Anafault.Report.pp_table run in
        check_bool "table reports the exhausted ladder" true
          (contains table "[after 2 attempts]");
        let summary = Format.asprintf "%a" Anafault.Report.pp_summary run in
        check_bool "summary breaks failures down by class" true
          (contains summary failure_kind));
    Alcotest.test_case "non-retryable failures skip the ladder" `Quick (fun () ->
        let ghost =
          Faults.Fault.make ~id:"#G"
            ~kind:(Faults.Fault.Break
                     { net = "in";
                       moved = [ { Faults.Fault.device = "ZZ"; port = 1 } ] })
            ~mechanism:"poly_open" ~prob:1e-8 ()
        in
        let run = Anafault.Simulate.run config inverter [ ghost ] in
        let r = List.hd run.Anafault.Simulate.results in
        (match r.outcome with
        | Anafault.Simulate.Sim_failed (Anafault.Simulate.Bad_injection _) -> ()
        | o ->
          Alcotest.failf "expected Bad_injection, got %s"
            (Anafault.Outcome.outcome_to_string o));
        check_int "single attempt" 1 (List.length r.attempts));
    Alcotest.test_case "retries are counted in the telemetry" `Quick (fun () ->
        let obs = Obs.memory () in
        let config = { config with obs } in
        let _ = Anafault.Simulate.run config inverter [ singular_bridge ] in
        let events = Obs.drain obs in
        check_bool "anafault.retry counted" true
          (counter_total events "anafault.retry" >= 1));
  ]

let robust_tests =
  [
    Alcotest.test_case "guard maps arbitrary exceptions to Crashed" `Quick (fun () ->
        let r =
          Anafault.Simulate.guard benign_bridge (fun () -> failwith "boom")
        in
        (match r.outcome with
        | Anafault.Simulate.Sim_failed (Anafault.Simulate.Crashed msg) ->
          check_bool "carries the exception" true (contains msg "boom")
        | o ->
          Alcotest.failf "expected Crashed, got %s"
            (Anafault.Outcome.outcome_to_string o));
        check_int "no attempts recorded" 0 (List.length r.attempts));
    Alcotest.test_case "patch overflow falls back to a rebuild" `Quick (fun () ->
        (* A bridge between two nets the circuit does not have needs two
           fresh node rows plus a branch - beyond the session's overlay
           reserve - so the session path must rebuild, and agree with
           the from-scratch path. *)
        let ghost_bridge =
          Faults.Fault.make ~id:"#O"
            ~kind:(Faults.Fault.Bridge { net_a = "ghost1"; net_b = "ghost2" })
            ~mechanism:"metal1_short" ~prob:1e-9 ()
        in
        let obs = Obs.memory () in
        let config = { config with obs } in
        let nominal, _ = Anafault.Simulate.nominal config inverter in
        let sess = Anafault.Simulate.session config inverter in
        let in_session = Anafault.Simulate.run_one_in config sess ~nominal ghost_bridge in
        let rebuilt = Anafault.Simulate.run_one config inverter ~nominal ghost_bridge in
        check_bool "session path agrees with rebuild path" true
          (in_session.outcome = rebuilt.outcome);
        check_bool "rebuild counted" true
          (counter_total (Obs.drain obs) "session.rebuild" >= 1));
    Alcotest.test_case "a poisoned session is quarantined, later faults unaffected"
      `Quick (fun () ->
        let obs = Obs.memory () in
        let config = { config with retries = []; obs } in
        let run =
          Anafault.Simulate.run config inverter (singular_bridge :: faults)
        in
        (match key run with
        | ("#S", first) :: rest ->
          check_bool "poisoning fault failed" true (String.length first > 1 && first.[0] = 'f');
          let clean =
            Anafault.Simulate.run { config with obs = Obs.null } inverter faults
          in
          Alcotest.(check (list (pair string string)))
            "bit-for-bit with an unpoisoned run" (key clean) rest
        | _ -> Alcotest.fail "unexpected result order");
        check_bool "quarantine counted" true
          (counter_total (Obs.drain obs) "session.quarantine" >= 1));
    Alcotest.test_case "parallel progress is monotone and complete" `Quick (fun () ->
        let calls = ref [] in
        let config = { config with domains = 4 } in
        let _ =
          Anafault.Parsim.execute
            ~progress:(fun d t -> calls := (d, t) :: !calls)
            config inverter faults
        in
        let calls = List.rev !calls in
        check_bool "at least the final call" true (calls <> []);
        check_bool "all totals right" true (List.for_all (fun (_, t) -> t = 3) calls);
        let rec monotone = function
          | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
          | [ _ ] | [] -> true
        in
        check_bool "monotone" true (monotone calls);
        check_bool "ends at (total, total)" true
          (match List.rev calls with (3, 3) :: _ -> true | _ -> false));
  ]

(* --- Lock-step batched fault simulation ------------------------------- *)

let find_result (run : Anafault.Simulate.run) id =
  List.find
    (fun (r : Anafault.Simulate.fault_result) -> r.fault.Faults.Fault.id = id)
    run.Anafault.Simulate.results

let batch_tests =
  [
    Alcotest.test_case "auto width scales with campaign size" `Quick (fun () ->
        let at ~domains ~total =
          Anafault.Simulate.effective_batch
            { config with Anafault.Simulate.domains }
            ~total
        in
        check_int "smoke campaigns stay serial" 1 (at ~domains:1 ~total:6);
        check_int "never zero" 1 (at ~domains:4 ~total:0);
        check_int "large single-domain campaign" 16 (at ~domains:1 ~total:200);
        check_int "width shrinks with more domains" 12 (at ~domains:4 ~total:200);
        check_int "explicit width wins" 5
          (Anafault.Simulate.effective_batch
             { config with Anafault.Simulate.batch = 5 }
             ~total:6));
    Alcotest.test_case "batched run equals serial run bit-for-bit" `Quick
      (fun () ->
        let serial = Anafault.Simulate.run config inverter faults in
        let batched, _ =
          Anafault.Parsim.execute ~domains:1 ~batch:3 config inverter faults
        in
        Alcotest.(check (list (pair string string)))
          "same outcomes" (key serial) (key batched));
    Alcotest.test_case "batched run equals serial on a synthesized grid" `Quick
      (fun () ->
        let circuit = Synth.Circuit_synth.resistor_grid ~rows:4 ~cols:4 () in
        let grid_faults =
          Faults.Universe.build circuit |> List.filteri (fun i _ -> i < 12)
        in
        let tran = { Netlist.Parser.tstep = 1e-7; tstop = 2e-6; uic = false } in
        let observed = Anafault.Simulate.default_observed circuit in
        let config = Anafault.Simulate.default_config ~tran ~observed () in
        let serial = Anafault.Simulate.run config circuit grid_faults in
        let batched, _ =
          Anafault.Parsim.execute ~domains:1 ~batch:4 config circuit grid_faults
        in
        Alcotest.(check (list (pair string string)))
          "same outcomes" (key serial) (key batched));
    Alcotest.test_case "a decided fault is dropped early" `Quick (fun () ->
        let obs = Obs.memory () in
        let config = { config with obs } in
        let serial = Anafault.Simulate.run { config with obs = Obs.null } inverter faults in
        let batched, _ =
          Anafault.Parsim.execute ~domains:1 ~batch:3 config inverter faults
        in
        let events = Obs.drain obs in
        check_bool "drops counted" true (counter_total events "batch.drops" >= 1);
        (* The hard bridge is detected early in the window, so its batch
           variant must stop stepping well before the serial one. *)
        let b = find_result batched "#1" and s = find_result serial "#1" in
        (match (b.outcome, s.outcome) with
        | Anafault.Simulate.Detected tb, Anafault.Simulate.Detected ts ->
          Alcotest.(check (float 0.0)) "same detection time" ts tb
        | _ -> Alcotest.fail "expected the bridge detected in both runs");
        check_bool "fewer accepted steps for the dropped variant" true
          (b.stats.Sim.Engine.accepted_steps < s.stats.Sim.Engine.accepted_steps));
    Alcotest.test_case "batch width does not change the fingerprint" `Quick
      (fun () ->
        check_bool "interchangeable journals" true
          (Anafault.Simulate.fingerprint config inverter faults
          = Anafault.Simulate.fingerprint
              { config with Anafault.Simulate.batch = 8 }
              inverter faults));
    Alcotest.test_case "progress is monotone and complete under batching" `Quick
      (fun () ->
        let calls = ref [] in
        let _ =
          Anafault.Parsim.execute ~clamp:false ~domains:2 ~batch:2
            ~progress:(fun d t -> calls := (d, t) :: !calls)
            config inverter faults
        in
        let calls = List.rev !calls in
        check_bool "at least the final call" true (calls <> []);
        check_bool "all totals right" true (List.for_all (fun (_, t) -> t = 3) calls);
        let rec monotone = function
          | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
          | [ _ ] | [] -> true
        in
        check_bool "monotone" true (monotone calls);
        check_bool "ends at (total, total)" true
          (match List.rev calls with (3, 3) :: _ -> true | _ -> false));
    Alcotest.test_case "a dying domain leaves typed failures, not holes" `Quick
      (fun () ->
        let obs = Obs.memory () in
        let config = { config with obs } in
        Fun.protect
          ~finally:(fun () -> Anafault.Parsim.chaos_session_failure := fun _ -> false)
          (fun () ->
            Anafault.Parsim.chaos_session_failure := (fun d -> d = 1);
            let run, stats =
              Anafault.Parsim.run_with_stats ~clamp:false ~domains:2 config
                inverter faults
            in
            check_int "both domains reported" 2 (List.length stats);
            let dead =
              List.filter (fun (d : Anafault.Parsim.domain_stats) -> d.died) stats
            in
            check_int "exactly one died" 1 (List.length dead);
            check_int "the chaos domain" 1
              (List.hd dead).Anafault.Parsim.domain;
            check_bool "death counted" true
              (counter_total (Obs.drain obs) "parsim.domain_died" >= 1);
            (* The surviving domain drains the whole list. *)
            check_int "no failures leak into the results" 0
              (let _, _, failed = Anafault.Simulate.tally run in
               failed)));
    Alcotest.test_case "every domain dying still completes the campaign" `Quick
      (fun () ->
        Fun.protect
          ~finally:(fun () -> Anafault.Parsim.chaos_session_failure := fun _ -> false)
          (fun () ->
            Anafault.Parsim.chaos_session_failure := (fun _ -> true);
            let run, stats =
              Anafault.Parsim.run_with_stats ~clamp:false ~domains:2 config
                inverter faults
            in
            check_bool "all domains died" true
              (List.for_all
                 (fun (d : Anafault.Parsim.domain_stats) -> d.died)
                 stats);
            check_int "results all accounted for" 3
              (List.length run.Anafault.Simulate.results);
            List.iter
              (fun (r : Anafault.Simulate.fault_result) ->
                match r.outcome with
                | Anafault.Simulate.Sim_failed (Anafault.Simulate.Crashed _) -> ()
                | o ->
                  Alcotest.failf "expected Crashed, got %s"
                    (Anafault.Outcome.outcome_to_string o))
              run.Anafault.Simulate.results));
  ]

exception Abort

let with_temp_journal f =
  let path = Filename.temp_file "anafault_journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
      f path)

let start_exn ~path ~fingerprint ~resume ~faults =
  match Anafault.Journal.start ~path ~fingerprint ~resume ~faults with
  | Ok j -> j
  | Error msg -> Alcotest.fail msg

let journal_tests =
  [
    Alcotest.test_case "a journalled campaign restores on resume" `Quick (fun () ->
        with_temp_journal @@ fun path ->
        let fp = Anafault.Simulate.fingerprint config inverter faults in
        let fault_arr = Array.of_list faults in
        let j = start_exn ~path ~fingerprint:fp ~resume:false ~faults:fault_arr in
        let first = Anafault.Simulate.run ~journal:j config inverter faults in
        Anafault.Journal.close j;
        let j2 = start_exn ~path ~fingerprint:fp ~resume:true ~faults:fault_arr in
        check_int "all restored" 3 (Anafault.Journal.restored_count j2);
        let obs = Obs.memory () in
        let second =
          Anafault.Simulate.run ~journal:j2 { config with obs } inverter faults
        in
        Anafault.Journal.close j2;
        Alcotest.(check (list (pair string string)))
          "bit-for-bit" (key first) (key second);
        check_int "nothing re-simulated" 3
          (counter_total (Obs.drain obs) "journal.skipped"));
    Alcotest.test_case "killed mid-campaign, resume matches the uninterrupted run"
      `Quick (fun () ->
        with_temp_journal @@ fun path ->
        let uninterrupted = Anafault.Simulate.run config inverter faults in
        let fp = Anafault.Simulate.fingerprint config inverter faults in
        let fault_arr = Array.of_list faults in
        let j = start_exn ~path ~fingerprint:fp ~resume:false ~faults:fault_arr in
        (match
           Anafault.Simulate.run ~journal:j
             ~progress:(fun completed _ -> if completed >= 1 then raise Abort)
             config inverter faults
         with
        | exception Abort -> ()
        | _ -> Alcotest.fail "campaign should have been aborted");
        Anafault.Journal.close j;
        let j2 = start_exn ~path ~fingerprint:fp ~resume:true ~faults:fault_arr in
        check_int "one fault survived the kill" 1 (Anafault.Journal.restored_count j2);
        let obs = Obs.memory () in
        let resumed =
          Anafault.Simulate.run ~journal:j2 { config with obs } inverter faults
        in
        Anafault.Journal.close j2;
        Alcotest.(check (list (pair string string)))
          "detection tally bit-for-bit" (key uninterrupted) (key resumed);
        check_bool "tallies equal" true
          (Anafault.Simulate.tally uninterrupted = Anafault.Simulate.tally resumed);
        check_int "completed fault not re-simulated" 1
          (counter_total (Obs.drain obs) "journal.skipped"));
    Alcotest.test_case "a torn trailing line is tolerated" `Quick (fun () ->
        with_temp_journal @@ fun path ->
        let fp = Anafault.Simulate.fingerprint config inverter faults in
        let fault_arr = Array.of_list faults in
        let j = start_exn ~path ~fingerprint:fp ~resume:false ~faults:fault_arr in
        let _ = Anafault.Simulate.run ~journal:j config inverter faults in
        Anafault.Journal.close j;
        let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
        output_string oc "{\"index\": 2, \"id";
        close_out oc;
        let j2 = start_exn ~path ~fingerprint:fp ~resume:true ~faults:fault_arr in
        check_int "intact lines all restored" 3 (Anafault.Journal.restored_count j2);
        Anafault.Journal.close j2);
    Alcotest.test_case "a journal for another campaign is refused" `Quick (fun () ->
        with_temp_journal @@ fun path ->
        let fp = Anafault.Simulate.fingerprint config inverter faults in
        let fault_arr = Array.of_list faults in
        let j = start_exn ~path ~fingerprint:fp ~resume:false ~faults:fault_arr in
        Anafault.Journal.close j;
        (match
           Anafault.Journal.start ~path ~fingerprint:"deadbeef" ~resume:true
             ~faults:fault_arr
         with
        | Error msg -> check_bool "says fingerprint" true (contains msg "fingerprint")
        | Ok _ -> Alcotest.fail "fingerprint mismatch must be refused");
        match
          Anafault.Journal.start ~path ~fingerprint:fp ~resume:true
            ~faults:(Array.of_list (faults @ faults))
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "fault-count mismatch must be refused");
    Alcotest.test_case "the parallel scheduler honours a journal" `Quick (fun () ->
        with_temp_journal @@ fun path ->
        let serial = Anafault.Simulate.run config inverter faults in
        let fp = Anafault.Simulate.fingerprint config inverter faults in
        let fault_arr = Array.of_list faults in
        let j = start_exn ~path ~fingerprint:fp ~resume:false ~faults:fault_arr in
        let _ = Anafault.Simulate.run ~journal:j config inverter faults in
        Anafault.Journal.close j;
        let j2 = start_exn ~path ~fingerprint:fp ~resume:true ~faults:fault_arr in
        let config4 = { config with domains = 4 } in
        let resumed, _ = Anafault.Parsim.execute ~journal:j2 config4 inverter faults in
        Anafault.Journal.close j2;
        Alcotest.(check (list (pair string string)))
          "parallel resume bit-for-bit" (key serial) (key resumed));
    Alcotest.test_case "journals are interchangeable between batch widths" `Quick
      (fun () ->
        (* A journal written by the batched scheduler resumes under the
           serial one and vice versa: the fingerprint ignores the batch
           width and the records carry identical payloads. *)
        with_temp_journal @@ fun path ->
        let fp = Anafault.Simulate.fingerprint config inverter faults in
        let fault_arr = Array.of_list faults in
        let j = start_exn ~path ~fingerprint:fp ~resume:false ~faults:fault_arr in
        let batched, _ =
          Anafault.Parsim.execute ~journal:j ~domains:1 ~batch:3 config inverter
            faults
        in
        Anafault.Journal.close j;
        let j2 = start_exn ~path ~fingerprint:fp ~resume:true ~faults:fault_arr in
        check_int "all restored" 3 (Anafault.Journal.restored_count j2);
        let obs = Obs.memory () in
        let serial =
          Anafault.Simulate.run ~journal:j2 { config with obs } inverter faults
        in
        Anafault.Journal.close j2;
        Alcotest.(check (list (pair string string)))
          "serial resume of a batched journal" (key batched) (key serial);
        check_int "nothing re-simulated" 3
          (counter_total (Obs.drain obs) "journal.skipped");
        (* And the other direction: a serial journal resumed batched. *)
        with_temp_journal @@ fun path2 ->
        let j3 =
          start_exn ~path:path2 ~fingerprint:fp ~resume:false ~faults:fault_arr
        in
        let serial2 = Anafault.Simulate.run ~journal:j3 config inverter faults in
        Anafault.Journal.close j3;
        let j4 =
          start_exn ~path:path2 ~fingerprint:fp ~resume:true ~faults:fault_arr
        in
        let rebatched, _ =
          Anafault.Parsim.execute ~journal:j4 ~domains:1 ~batch:3 config inverter
            faults
        in
        Anafault.Journal.close j4;
        Alcotest.(check (list (pair string string)))
          "batched resume of a serial journal" (key serial2) (key rebatched));
    Alcotest.test_case "different configs fingerprint differently" `Quick (fun () ->
        let fp = Anafault.Simulate.fingerprint config inverter faults in
        check_bool "model changes it" true
          (fp
          <> Anafault.Simulate.fingerprint
               { config with model = Faults.Inject.default_resistor }
               inverter faults);
        check_bool "retry ladder changes it" true
          (fp
          <> Anafault.Simulate.fingerprint
               { config with retries = [] }
               inverter faults);
        check_bool "budget changes it" true
          (fp
          <> Anafault.Simulate.fingerprint
               { config with sim_options = deadline_options }
               inverter faults);
        check_bool "fault list changes it" true
          (fp <> Anafault.Simulate.fingerprint config inverter (List.tl faults));
        check_bool "domains and obs do not change it" true
          (fp
          = Anafault.Simulate.fingerprint
              { config with domains = 7; obs = Obs.memory () }
              inverter faults));
  ]

let suites =
  [
    ("anafault.detect", detect_tests);
    ("anafault.analyse", analyse_tests);
    ("anafault.incremental", incremental_tests);
    ("anafault.simulate", simulate_tests);
    ("anafault.batch", batch_tests);
    ("anafault.parsim", parsim_tests);
    ("anafault.coverage", coverage_tests);
    ("anafault.report", report_tests);
    ("anafault.failure", taxonomy_tests);
    ("anafault.budget", budget_tests);
    ("anafault.retry", retry_tests);
    ("anafault.robust", robust_tests);
    ("anafault.journal", journal_tests);
  ]
