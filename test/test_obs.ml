(* The telemetry subsystem: span nesting, domain-merged drains, the
   JSONL round-trip, the unified Analysis entry point, and the parity
   guarantee (instrumentation must not perturb the numerics). *)

let spans events =
  List.filter_map
    (function Obs.Span { name; parent; _ } -> Some (name, parent) | _ -> None)
    events

let obs_tests =
  [
    Alcotest.test_case "null sink is disabled and empty" `Quick (fun () ->
        Alcotest.(check bool) "enabled" false (Obs.enabled Obs.null);
        Alcotest.(check int)
          "span passes the result through" 7
          (Obs.span Obs.null "x" (fun _ -> 7));
        Obs.count Obs.null "c" 1;
        Obs.sample Obs.null "s" 1.0;
        Alcotest.(check int) "drain" 0 (List.length (Obs.drain Obs.null)));
    Alcotest.test_case "spans nest via parent links" `Quick (fun () ->
        let s = Obs.memory () in
        Obs.span s "outer" (fun _ ->
            Obs.span s "inner" (fun _ -> ());
            Obs.span s "inner2" (fun _ -> ()));
        Obs.span s "solo" (fun _ -> ());
        let recorded = spans (Obs.drain s) in
        Alcotest.(check (list (pair string (option string))))
          "parents"
          [
            ("outer", None);
            ("inner", Some "outer");
            ("inner2", Some "outer");
            ("solo", None);
          ]
          (List.sort
             (fun (a, _) (b, _) ->
               compare
                 (List.assoc a [ ("outer", 0); ("inner", 1); ("inner2", 2); ("solo", 3) ])
                 (List.assoc b [ ("outer", 0); ("inner", 1); ("inner2", 2); ("solo", 3) ]))
             recorded));
    Alcotest.test_case "an escaping exception still records the span" `Quick
      (fun () ->
        let s = Obs.memory () in
        (try Obs.span s "boom" (fun _ -> failwith "no") with Failure _ -> ());
        match Obs.drain s with
        | [ Obs.Span { name = "boom"; attrs; _ } ] ->
          Alcotest.(check bool)
            "error attr" true
            (List.mem_assoc "error" attrs)
        | _ -> Alcotest.fail "expected exactly one span");
    Alcotest.test_case "set attaches result-dependent attributes" `Quick
      (fun () ->
        let s = Obs.memory () in
        Obs.span s "f" (fun sp -> Obs.set sp "outcome" (Obs.Str "detected"));
        match Obs.drain s with
        | [ Obs.Span { attrs; _ } ] ->
          Alcotest.(check bool) "attr present" true
            (List.mem ("outcome", Obs.Str "detected") attrs)
        | _ -> Alcotest.fail "expected exactly one span");
    Alcotest.test_case "drain merges domain buffers time-sorted" `Quick
      (fun () ->
        let s = Obs.memory () in
        Obs.count s "main" 1;
        let workers =
          List.init 2 (fun d ->
              Domain.spawn (fun () ->
                  for i = 1 to 5 do
                    Obs.count s (Printf.sprintf "worker%d" d) i;
                    Obs.sample s "latency" (float_of_int i)
                  done))
        in
        List.iter Domain.join workers;
        let events = Obs.drain s in
        Alcotest.(check int) "all events survive the merge" 21
          (List.length events);
        let times = List.map Obs.event_time events in
        Alcotest.(check bool)
          "sorted by time" true
          (List.sort compare times = times);
        let domains = List.sort_uniq compare (List.map Obs.event_domain events) in
        Alcotest.(check int) "three distinct domains" 3 (List.length domains);
        Alcotest.(check int) "buffers cleared" 0 (List.length (Obs.drain s)));
    Alcotest.test_case "summary aggregates counters and samples" `Quick
      (fun () ->
        let s = Obs.memory () in
        Obs.count s "n" 2;
        Obs.count s "n" 3;
        Obs.sample s "v" 1.0;
        Obs.sample s "v" 3.0;
        let summary = Obs.Summary.of_events (Obs.drain s) in
        Alcotest.(check (list (pair string int)))
          "counter sum"
          [ ("n", 5) ]
          summary.Obs.Summary.counters;
        match summary.Obs.Summary.samples with
        | [ ("v", st) ] ->
          Alcotest.(check int) "count" 2 st.Obs.Summary.count;
          Alcotest.(check (float 1e-9)) "mean" 2.0 st.Obs.Summary.mean;
          Alcotest.(check (float 1e-9)) "min" 1.0 st.Obs.Summary.min;
          Alcotest.(check (float 1e-9)) "max" 3.0 st.Obs.Summary.max
        | _ -> Alcotest.fail "expected one sample stat");
    Alcotest.test_case "tee fans out; drain returns one stream" `Quick
      (fun () ->
        let a = Obs.memory () and b = Obs.memory () in
        let t = Obs.tee [ Obs.null; a; b ] in
        Alcotest.(check bool) "tee of a live sink is enabled" true
          (Obs.enabled t);
        Alcotest.(check bool) "tee of nulls is not" false
          (Obs.enabled (Obs.tee [ Obs.null ]));
        Obs.count t "x" 1;
        Obs.span t "s" (fun _ -> ());
        let events = Obs.drain t in
        Alcotest.(check int) "one merged stream" 2 (List.length events);
        Alcotest.(check int) "second component also drained" 0
          (List.length (Obs.drain b)));
  ]

let json_tests =
  [
    Alcotest.test_case "numbers keep the int/float distinction" `Quick
      (fun () ->
        (match Obs.Json.of_string "42" with
        | Ok (Obs.Json.Int 42) -> ()
        | _ -> Alcotest.fail "42 should parse as Int");
        (match Obs.Json.of_string "2.0" with
        | Ok (Obs.Json.Float 2.0) -> ()
        | _ -> Alcotest.fail "2.0 should parse as Float");
        match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float 2.0)) with
        | Ok (Obs.Json.Float 2.0) -> ()
        | _ -> Alcotest.fail "Float 2.0 should round-trip as Float");
    Alcotest.test_case "events round-trip through JSONL" `Quick (fun () ->
        let originals =
          [
            Obs.Span
              {
                name = "engine.analysis";
                domain = 0;
                start = 123.456789012345;
                dur = 0.25;
                parent = Some "anafault.fault";
                attrs =
                  [
                    ("kind", Obs.Str "tran");
                    ("ok", Obs.Bool true);
                    ("iters", Obs.Int 17);
                    ("t_detect", Obs.Float 1.25e-6);
                  ];
              };
            Obs.Count { name = "c"; domain = 3; time = 1.0; n = 2; attrs = [] };
            Obs.Sample
              {
                name = "s";
                domain = 1;
                time = 2.0;
                v = 0.1;
                attrs = [ ("q", Obs.Str "a \"quoted\"\nline") ];
              };
          ]
        in
        let text =
          String.concat "\n"
            (List.map
               (fun e -> Obs.Json.to_string (Obs.event_to_json e))
               originals)
        in
        match Obs.Jsonl.parse_string text with
        | Error msg -> Alcotest.fail msg
        | Ok parsed ->
          Alcotest.(check bool) "structural equality" true (parsed = originals));
    Alcotest.test_case "write/read_file round-trips a real trace" `Quick
      (fun () ->
        let s = Obs.memory () in
        Obs.span s "outer" (fun sp ->
            Obs.set sp "n" (Obs.Int 1);
            Obs.count s "hits" 4;
            Obs.sample s "dt" 3.5e-5);
        let events = Obs.drain s in
        let path = Filename.temp_file "test_obs" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> Obs.Jsonl.write oc events);
            match Obs.Jsonl.read_file path with
            | Error msg -> Alcotest.fail msg
            | Ok parsed ->
              Alcotest.(check bool) "identical" true (parsed = events)));
    Alcotest.test_case "parse errors carry the line number" `Quick (fun () ->
        match Obs.Jsonl.parse_string "{\"ev\":\"count\",\"name\":\"a\",\"domain\":0,\"time\":1.0,\"n\":1}\nnot json" with
        | Error msg ->
          Alcotest.(check bool) "mentions line 2" true (String.contains msg '2')
        | Ok _ -> Alcotest.fail "garbage should not parse");
  ]

let divider =
  Netlist.Circuit.of_devices "divider"
    [
      Netlist.Device.V { name = "V1"; np = "in"; nn = "0"; wave = Netlist.Wave.Dc 2.0 };
      Netlist.Device.R { name = "R1"; n1 = "in"; n2 = "out"; value = 1e3 };
      Netlist.Device.R { name = "R2"; n1 = "out"; n2 = "0"; value = 1e3 };
    ]

let analysis_tests =
  [
    Alcotest.test_case "run Op matches the deprecated entry point" `Quick
      (fun () ->
        let sol = Sim.Engine.(Analysis.solution (run divider Analysis.Op)) in
        let old = Compat.dc_operating_point divider in
        Alcotest.(check (float 1e-12))
          "same node voltage"
          (Sim.Engine.voltage old "out")
          (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "result accessors reject the wrong analysis" `Quick
      (fun () ->
        let result = Sim.Engine.(run divider Analysis.Op) in
        match Sim.Engine.Analysis.waveform result with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "waveform of an Op result should raise");
    Alcotest.test_case "run emits one engine.analysis span" `Quick (fun () ->
        let obs = Obs.memory () in
        ignore (Sim.Engine.run ~obs divider Sim.Engine.Analysis.Op);
        let names =
          List.filter (fun e -> Obs.event_name e = "engine.analysis") (Obs.drain obs)
        in
        Alcotest.(check int) "one span" 1 (List.length names));
  ]

(* The guarantee the whole subsystem rests on: switching the sink can
   never change the numbers.  Same circuit, same analysis, memory sink
   versus null sink - the waveforms must be bit-identical. *)
let parity_tests =
  [
    Alcotest.test_case "instrumented VCO transient is bit-identical" `Slow
      (fun () ->
        let tran circuit ~obs =
          Sim.Engine.(
            Analysis.waveform
              (run ~obs circuit
                 (Analysis.Tran
                    {
                      tstep = Vco.Schematic.tran.Netlist.Parser.tstep;
                      tstop = Vco.Schematic.tran.Netlist.Parser.tstop;
                      uic = true;
                    })))
        in
        let plain = tran (Cat.Demo.schematic ()) ~obs:Obs.null in
        let obs = Obs.memory () in
        let traced = tran (Cat.Demo.schematic ()) ~obs in
        let events = Obs.drain obs in
        Alcotest.(check bool) "trace is non-trivial" true
          (List.length events > 100);
        Alcotest.(check bool)
          "identical time axes" true
          (Sim.Waveform.times plain = Sim.Waveform.times traced);
        Array.iter
          (fun name ->
            Alcotest.(check bool)
              (name ^ " bit-identical") true
              (Sim.Waveform.samples plain name = Sim.Waveform.samples traced name))
          (Sim.Waveform.names plain));
    Alcotest.test_case "instrumented fault batch matches null-sink batch"
      `Slow (fun () ->
        let circuit = Cat.Demo.schematic () in
        let faults =
          List.filteri (fun i _ -> i < 4) (Faults.Universe.build circuit)
        in
        let outcome_of (r : Anafault.Simulate.fault_result) =
          match r.outcome with
          | Anafault.Simulate.Detected t -> Printf.sprintf "d %.17g" t
          | Anafault.Simulate.Undetected -> "u"
          | Anafault.Simulate.Sim_failed f ->
            "f " ^ Anafault.Simulate.failure_to_string f
        in
        let run ~obs =
          let config = { Cat.Demo.config with Anafault.Simulate.obs } in
          List.map outcome_of
            (Anafault.Simulate.run config circuit faults).Anafault.Simulate.results
        in
        let plain = run ~obs:Obs.null in
        let obs = Obs.memory () in
        let traced = run ~obs in
        ignore (Obs.drain obs);
        Alcotest.(check (list string)) "same outcomes" plain traced);
  ]

let suites =
  [
    ("obs.core", obs_tests);
    ("obs.json", json_tests);
    ("obs.analysis", analysis_tests);
    ("obs.parity", parity_tests);
  ]
