(* Lock-step batched fault simulation: the width crossover.

   One synthesized resistor-grid campaign (sparse-solver territory: the
   10x10 grid has 101 unknowns, past the Auto threshold) is run at
   several lock-step batch widths on a single domain.  Width 1 is the
   per-fault serial reference; wider batches share the session buffers
   and one sparse symbolic pattern across the whole batch and drop each
   fault the moment its detection verdict is final.  The acceptance
   point: width 16 must beat the serial path by >= 3x end to end on a
   >= 200-fault campaign while producing a bit-identical detection
   table (the full Report.csv string, which carries every fault's
   outcome, detection time and attempt count, is compared verbatim). *)

let tran = { Netlist.Parser.tstep = 1e-7; tstop = 4e-6; uic = false }

let rows = 10

let cols = 10

let max_faults = 240

let run () =
  Helpers.banner "Batched fault simulation: lock-step width crossover";
  let circuit = Synth.Circuit_synth.resistor_grid ~rows ~cols () in
  let faults =
    Faults.Universe.build circuit |> List.filteri (fun i _ -> i < max_faults)
  in
  let total = List.length faults in
  let observed = Anafault.Simulate.default_observed circuit in
  (* The paper's 2 V tolerance is sized for a 5 V oscillator; on a
     resistive divider network the faulty deviations are tens of
     millivolts, so the detection threshold is scaled down accordingly -
     otherwise nothing is detected and nothing can be dropped. *)
  let tolerance = { Anafault.Detect.tol_v = 1e-3; tol_t = 0.2e-6 } in
  let config ~batch =
    Anafault.Simulate.default_config ~tran ~observed ~tolerance ~batch ()
  in
  Printf.printf
    "  resistor grid %dx%d (%d unknowns, sparse backend), %d faults,\n\
    \  observing %s; transient %.0e s in %.0e s steps; 1 domain\n\n"
    rows cols
    ((rows * cols) + 1)
    total observed tran.Netlist.Parser.tstop tran.Netlist.Parser.tstep;
  Helpers.row "  %-10s %9s %9s  %s\n" "width" "wall_s" "speedup" "table";
  let serial =
    fst (Anafault.Parsim.execute (config ~batch:1) circuit faults)
  in
  let serial_csv = Anafault.Report.csv serial in
  let serial_s = serial.Anafault.Simulate.wall_seconds in
  let detected, undetected, failed = Anafault.Simulate.tally serial in
  Helpers.row "  %-10d %9.3f %8.2fx  %s\n" 1 serial_s 1.0
    (Printf.sprintf "reference (%d detected / %d undetected / %d failed)"
       detected undetected failed);
  let measure width =
    let r = fst (Anafault.Parsim.execute (config ~batch:width) circuit faults) in
    let same = String.equal (Anafault.Report.csv r) serial_csv in
    let wall = r.Anafault.Simulate.wall_seconds in
    let speedup = if wall > 0.0 then serial_s /. wall else Float.infinity in
    Helpers.row "  %-10d %9.3f %8.2fx  %s\n" width wall speedup
      (if same then "identical" else "DIFFERS");
    (width, speedup, same)
  in
  let results =
    (* Rows in print order (a list literal would evaluate right to
       left). *)
    let r2 = measure 2 in
    let r4 = measure 4 in
    let r8 = measure 8 in
    let r16 = measure 16 in
    [ r2; r4; r8; r16 ]
  in
  let identical = List.for_all (fun (_, _, same) -> same) results in
  let sp16 =
    List.fold_left
      (fun acc (w, s, _) -> if w = 16 then s else acc)
      0.0 results
  in
  Printf.printf
    "\n  width-16 speedup >= 3x: %s (%.2fx); all detection tables identical: %s\n"
    (if sp16 >= 3.0 then "yes" else "NO")
    sp16
    (if identical then "yes" else "NO")
