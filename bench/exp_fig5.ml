(* Fig. 5 - fault coverage versus test time (source model, tolerance 2 V
   and 0.2 us).  The paper: coverage nearly 100 % after 25 % of the 4 us
   test, every detectable fault found by ~55 %. *)

let run () =
  Helpers.banner "Fig. 5 - fault coverage vs time (source model, 2 V / 0.2 us)";
  let run_result =
    Cat.run_fault_simulation
      { Cat.Demo.config with Anafault.Simulate.domains = 8 }
      (Cat.Demo.schematic ()) (Helpers.lift_faults ())
  in
  Printf.printf "%8s %10s\n" "time [%]" "coverage";
  List.iter
    (fun (t, pct) ->
      Printf.printf "%8.0f %9.1f%%\n" (100.0 *. t /. 4e-6) pct)
    (Anafault.Coverage.curve run_result ~points:21);
  Printf.printf "\n%s\n" (Anafault.Report.coverage_plot run_result);
  let final = Anafault.Coverage.final_percent run_result in
  let t_at p =
    match Anafault.Coverage.time_to_percent run_result p with
    | Some t -> Printf.sprintf "%.0f %%" (100.0 *. t /. 4e-6)
    | None -> "never"
  in
  Printf.printf "%-44s %10s %10s\n" "" "ours" "paper";
  Printf.printf "%-44s %9.1f%% %10s\n" "final coverage" final "100%";
  Printf.printf "%-44s %10s %10s\n" "time to 95% of final coverage"
    (t_at (0.95 *. final)) "~25%";
  Printf.printf "%-44s %10s %10s\n" "time to final coverage" (t_at final) "~55%";
  Printf.printf "%-44s %9.1f%%\n" "probability-weighted coverage"
    (Anafault.Coverage.weighted_percent run_result);
  Printf.printf "\nper-mechanism overview:\n";
  Format.printf "%a@." Anafault.Report.pp_overview run_result;
  let _, undetected, failed = Anafault.Simulate.tally run_result in
  Printf.printf
    "\nundetected: %d, failures: %d (cascode-diode bridges and floating-gate\n\
     contention inside the 2 V tolerance; see EXPERIMENTS.md)\n"
    undetected failed;
  run_result
