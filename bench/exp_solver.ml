(* Linear-solver backend crossover.

   Runs the same transient on synthesized ladder and grid circuits with
   the dense and the sparse backend, isolating the time spent inside
   factor+solve through the engine.lu.seconds_per_solve samples both
   backends emit.  The small sizes show where dense wins (the Auto
   threshold lives there); the >= 200-unknown rows are the acceptance
   point - sparse must beat dense by >= 5x on factor+solve while agreeing
   on the waveforms. *)

let tstep = 1e-7

let tstop = 4e-6

let lu_seconds events =
  List.fold_left
    (fun acc e ->
      match e with
      | Obs.Sample { name = "engine.lu.seconds_per_solve"; v; _ } -> acc +. v
      | Obs.Sample _ | Obs.Count _ | Obs.Span _ -> acc)
    0.0 events

let counter events name =
  List.fold_left
    (fun acc e ->
      match e with
      | Obs.Count { name = n; n = k; _ } when String.equal n name -> acc + k
      | Obs.Count _ | Obs.Sample _ | Obs.Span _ -> acc)
    0 events

let last_sample events name =
  List.fold_left
    (fun acc e ->
      match e with
      | Obs.Sample { name = n; v; _ } when String.equal n name -> Some v
      | Obs.Sample _ | Obs.Count _ | Obs.Span _ -> acc)
    None events

let run_backend backend circuit =
  let obs = Obs.memory () in
  let options = { Sim.Engine.default_options with solver = backend } in
  let wf =
    Sim.Engine.(
      Analysis.waveform
        (run ~options ~obs circuit (Analysis.Tran { tstep; tstop; uic = false })))
  in
  (wf, Obs.drain obs)

(* Max |dense - sparse| over every signal of the resampled waveforms. *)
let max_delta wf_a wf_b =
  let n = 200 in
  let ra = Sim.Waveform.resample wf_a ~n and rb = Sim.Waveform.resample wf_b ~n in
  let times = Sim.Waveform.times ra in
  Array.fold_left
    (fun acc signal ->
      Array.fold_left
        (fun acc t ->
          Float.max acc
            (Float.abs
               (Sim.Waveform.value_at ra signal t -. Sim.Waveform.value_at rb signal t)))
        acc times)
    0.0 (Sim.Waveform.names ra)

let bench name circuit unknowns =
  let wf_d, ev_d = run_backend Sim.Solver.Dense circuit in
  let wf_s, ev_s = run_backend Sim.Solver.Sparse circuit in
  let td = lu_seconds ev_d and ts = lu_seconds ev_s in
  let speedup = if ts > 0.0 then td /. ts else Float.infinity in
  let delta = max_delta wf_d wf_s in
  let nnz = Option.value ~default:0.0 (last_sample ev_s "solver.sparse.nnz") in
  let fill = Option.value ~default:0.0 (last_sample ev_s "solver.sparse.fill_in") in
  Helpers.row "  %-22s %5d  %9.4f %9.4f %7.2fx  %8.1e  %6.0f %6.0f %5d %6d\n" name
    unknowns td ts speedup delta nnz fill
    (counter ev_s "solver.sparse.full_factor")
    (counter ev_s "solver.sparse.refactor");
  (unknowns, speedup, delta)

let run () =
  Helpers.banner "Solver backends: dense vs sparse crossover";
  Printf.printf
    "  transient %.0e s in %.0e s steps; factor+solve seconds from\n\
    \  engine.lu.seconds_per_solve; delta = max |dense - sparse| on all signals\n\n"
    tstop tstep;
  Helpers.row "  %-22s %5s  %9s %9s %8s  %8s  %6s %6s %5s %6s\n" "circuit" "n"
    "dense_s" "sparse_s" "speedup" "delta" "nnz" "fill" "full" "refac";
  let ladder s =
    bench
      (Printf.sprintf "rc ladder %d" s)
      (Synth.Circuit_synth.rc_ladder ~diodes:true ~sections:s ())
      (s + 2)
  in
  let results =
    (* Rows in print order (a list literal would evaluate - and print -
       right to left). *)
    let r30 = ladder 30 in
    let r60 = ladder 60 in
    let r120 = ladder 120 in
    let r260 = ladder 260 in
    let grid =
      bench "resistor grid 16x16"
        (Synth.Circuit_synth.resistor_grid ~rows:16 ~cols:16 ())
        (256 + 1)
    in
    [ r30; r60; r120; r260; grid ]
  in
  let big = List.filter (fun (n, _, _) -> n >= 200) results in
  let ok_speed = List.for_all (fun (_, s, _) -> s >= 5.0) big in
  let ok_delta = List.for_all (fun (_, _, d) -> d < 1e-9) results in
  Printf.printf "\n  >= 200-unknown speedup >= 5x: %s; all deltas < 1e-9: %s\n"
    (if ok_speed then "yes" else "NO")
    (if ok_delta then "yes" else "NO")
