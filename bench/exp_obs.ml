(* Telemetry overhead - the same VCO fault batch under every sink.

   The contract of lib/obs is that an uninstrumented run stays
   uninstrumented: with the null sink every emission site reduces to one
   pattern match, so the batch must cost the same as before the
   subsystem existed.  Two independent null runs give the measurement
   noise floor; the target is a null-sink overhead below 2 %. *)

let repeats = 5

let fault_count = 12

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let batch ~obs faults =
  let config = { Cat.Demo.config with Anafault.Simulate.obs } in
  let run = Anafault.Simulate.run config (Cat.Demo.schematic ()) faults in
  ignore (Anafault.Simulate.tally run)

let measure mk_sink faults =
  let sample () =
    let obs, finish = mk_sink () in
    let t0 = Unix.gettimeofday () in
    batch ~obs faults;
    let events = Obs.drain obs in
    let dt = Unix.gettimeofday () -. t0 in
    finish ();
    (dt, List.length events)
  in
  let samples = List.init repeats (fun _ -> sample ()) in
  (median (List.map fst samples), snd (List.hd samples))

let run () =
  Helpers.banner "Telemetry overhead - VCO fault batch per sink";
  let faults =
    List.filteri (fun i _ -> i < fault_count) (Helpers.lift_faults ())
  in
  Printf.printf "%d faults, %d repeats per sink, median wall time\n\n"
    (List.length faults) repeats;
  (* Warm up: pay the lazy layout extraction and reach a steady GC state
     before anything is timed. *)
  batch ~obs:Obs.null faults;
  let null () = (Obs.null, fun () -> ()) in
  let memory () = (Obs.memory (), fun () -> ()) in
  let jsonl () =
    let path = Filename.temp_file "anafault_obs" ".jsonl" in
    let oc = open_out path in
    ( Obs.jsonl oc,
      fun () ->
        close_out oc;
        Sys.remove path )
  in
  let t_null, _ = measure null faults in
  let t_null2, _ = measure null faults in
  let t_memory, n_memory = measure memory faults in
  let t_jsonl, n_jsonl = measure jsonl faults in
  let pct t = 100.0 *. ((t /. t_null) -. 1.0) in
  Printf.printf "%-22s %10s %10s %8s\n" "sink" "wall [s]" "overhead" "events";
  Printf.printf "%-22s %10.3f %10s %8d\n" "null" t_null "-" 0;
  Printf.printf "%-22s %10.3f %9.2f%% %8d    <- noise floor (null A/A)\n"
    "null (again)" t_null2 (pct t_null2) 0;
  Printf.printf "%-22s %10.3f %9.2f%% %8d\n" "memory" t_memory (pct t_memory)
    n_memory;
  Printf.printf "%-22s %10.3f %9.2f%% %8d\n" "jsonl (tmpfile)" t_jsonl
    (pct t_jsonl) n_jsonl;
  Printf.printf "\ntarget: null-sink overhead < 2%% of the uninstrumented batch\n\
                 (the null rows differ only by measurement noise; compare the\n\
                 instrumented rows against that floor)\n"
