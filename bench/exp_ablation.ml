(* Ablations of the design choices DESIGN.md calls out:
   - integration method (backward Euler vs trapezoidal) on the VCO;
   - defect-size density (1/x^3 vs uniform) on LIFT's ranking;
   - detection tolerances on the coverage curve;
   - parallel fault simulation over 1..8 domains. *)

let integration () =
  Helpers.banner "Ablation - integration method on the nominal VCO";
  Printf.printf "%-18s %8s %8s %10s %8s\n" "method" "edges" "f [MHz]" "steps"
    "rejects";
  List.iter
    (fun (label, integration) ->
      let options = { Sim.Engine.default_options with integration } in
      let result =
        Sim.Engine.run ~options (Cat.Demo.schematic ())
          (Sim.Engine.Analysis.Tran
             {
               tstep = Helpers.tran.Netlist.Parser.tstep;
               tstop = Helpers.tran.Netlist.Parser.tstop;
               uic = true;
             })
      in
      let wf = Sim.Engine.Analysis.waveform result
      and stats = Sim.Engine.Analysis.stats result in
      Printf.printf "%-18s %8d %8.2f %10d %8d\n" label (Helpers.count_edges wf)
        (Helpers.frequency_mhz wf) stats.Sim.Engine.accepted_steps
        stats.Sim.Engine.rejected_steps)
    [ ("backward-euler", Sim.Engine.Backward_euler);
      ("trapezoidal", Sim.Engine.Trapezoidal) ];
  Printf.printf
    "(backward Euler is the tool default: its damping settles the metastable\n\
     states fault injection creates; trapezoidal rings on them)\n"

let size_pdf () =
  Helpers.banner "Ablation - defect-size density and fault ranking";
  let ext = (Lazy.force Helpers.glrfm).Cat.extraction in
  let tech = Layout.Tech.default in
  let uniform =
    Geom.Critical_area.Uniform
      { x_min = float_of_int tech.Layout.Tech.defect_x_min;
        x_max = float_of_int tech.Layout.Tech.defect_x_max }
  in
  let top options =
    let r = Defects.Lift.run ~options ext in
    List.filteri (fun i _ -> i < 10) (Defects.Lift.ranked r)
    |> List.map (fun (f : Faults.Fault.t) -> Faults.Fault.to_string f)
  in
  let cubic_top = top Defects.Lift.default_options in
  let uniform_top =
    top { Defects.Lift.default_options with pdf = Some uniform; p_min = 0.0 }
  in
  Printf.printf "top-10 faults, 1/x^3 density:\n";
  List.iter (fun f -> Printf.printf "  %s\n" f) cubic_top;
  Printf.printf "top-10 faults, uniform density:\n";
  List.iter (fun f -> Printf.printf "  %s\n" f) uniform_top;
  let key s = List.nth (String.split_on_char ' ' s) 0 in
  let overlap =
    List.length
      (List.filter (fun f -> List.mem (key f) (List.map key uniform_top)) cubic_top)
  in
  Printf.printf "rank overlap: %d/10 (the uniform density inflates large-defect\n\
                 mechanisms, reshuffling the tail)\n" overlap

let tolerance (run_paper : Anafault.Simulate.run) =
  Helpers.banner "Ablation - detection tolerance";
  Printf.printf "%-22s %10s %12s\n" "tolerance" "coverage" "t(final)";
  let show label (r : Anafault.Simulate.run) =
    let final = Anafault.Coverage.final_percent r in
    let t =
      match Anafault.Coverage.time_to_percent r final with
      | Some t -> Printf.sprintf "%4.0f%%" (100.0 *. t /. 4e-6)
      | None -> "never"
    in
    Printf.printf "%-22s %9.1f%% %12s\n" label final t
  in
  show "2 V / 0.2 us (paper)" run_paper;
  List.iter
    (fun (label, tol_v, tol_t) ->
      let config =
        { Cat.Demo.config with
          Anafault.Simulate.tolerance = { Anafault.Detect.tol_v; tol_t } }
      in
      let r =
        Cat.run_fault_simulation ~domains:8 config (Cat.Demo.schematic ())
          (Helpers.lift_faults ())
      in
      show label r)
    [ ("0.5 V / 0.2 us", 0.5, 0.2e-6); ("2 V / 0.05 us", 2.0, 0.05e-6) ];
  Printf.printf "(tighter amplitude tolerance catches the marginal contention\n\
                 faults; the time tolerance mainly shifts first-detection times)\n"

let domains () =
  Helpers.banner "Ablation - parallel fault simulation (paper: cluster AnaFAULT)";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "machine exposes %d core(s); Parsim clamps domain counts to that.\n"
    cores;
  if cores <= 1 then
    Printf.printf
      "single-core machine: the sweep would only measure scheduling noise -\n\
       skipped.  (Parsim's serial-equivalence is covered by the test suite.)\n"
  else begin
    let faults = Helpers.lift_faults () in
    Printf.printf "%-10s %10s %9s\n" "domains" "wall [s]" "speedup";
    let base = ref 0.0 in
    List.iter
      (fun d ->
        if d <= cores then begin
          let t0 = Unix.gettimeofday () in
          let _ =
            Cat.run_fault_simulation ~domains:d Cat.Demo.config (Cat.Demo.schematic ())
              faults
          in
          let t = Unix.gettimeofday () -. t0 in
          if d = 1 then base := t;
          Printf.printf "%-10d %10.1f %8.1fx\n" d t (!base /. t)
        end)
      [ 1; 2; 4; 8 ]
  end

let run run_paper =
  integration ();
  size_pdf ();
  tolerance run_paper;
  domains ()
