(* Shared helpers for the experiment reproductions. *)

let banner title =
  Printf.printf "\n";
  Printf.printf "======================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "======================================================================\n"

let tran = Vco.Schematic.tran

let simulate ?(options = Sim.Engine.default_options) ?(obs = Obs.null) circuit =
  Sim.Engine.(
    Analysis.waveform
      (run ~options ~obs circuit
         (Analysis.Tran
            {
              tstep = tran.Netlist.Parser.tstep;
              tstop = tran.Netlist.Parser.tstop;
              uic = true;
            })))

(* Rising-edge count of the VCO output through mid-rail. *)
let count_edges ?(signal = Vco.Schematic.out_node) wf =
  Sim.Waveform.rising_edges wf signal ~threshold:2.5

let frequency_mhz ?(signal = Vco.Schematic.out_node) wf =
  Sim.Waveform.estimate_frequency wf signal ~threshold:2.5 /. 1e6

let series_of ?(signal = Vco.Schematic.out_node) ?(n = 150) wf =
  let r = Sim.Waveform.resample wf ~n in
  Array.to_list
    (Array.map (fun t -> (t, Sim.Waveform.value_at r signal t)) (Sim.Waveform.times r))

(* The layout-driven artefacts are expensive; build them once. *)
let glrfm =
  lazy
    (Cat.run_glrfm ~extractor_options:Cat.Demo.extractor_options
       ~golden:(Cat.Demo.schematic ()) (Cat.Demo.mask ()))

let lift_faults () = (Lazy.force glrfm).Cat.lift.Defects.Lift.faults

let find_bridge nets =
  let sorted = List.sort compare nets in
  List.find_opt
    (fun (f : Faults.Fault.t) ->
      match f.kind with
      | Faults.Fault.Bridge { net_a; net_b } ->
        List.sort compare [ net_a; net_b ] = sorted
      | Faults.Fault.Break _ | Faults.Fault.Stuck_open _ -> false)
    (lift_faults ())

let inject_resistor circuit a b r =
  Netlist.Circuit.add circuit
    (Netlist.Device.R
       { name = Netlist.Circuit.fresh_name circuit "FB"; n1 = a; n2 = b; value = r })

let row fmt = Printf.printf fmt
