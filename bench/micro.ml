(* Bechamel micro-benchmarks: one kernel per reproduced table/figure plus
   the computational primitives underneath them. *)

open Bechamel
open Toolkit

(* --- fixtures (built once, outside the timed region) --- *)

let small_deck =
  {|bench inverter
VDD vdd 0 5
VIN in 0 PULSE(0 5 0 10n 10n 1u 2u)
RD vdd out 10k
M1 out in 0 0 NM W=20u L=1u
.model NM NMOS VTO=1 KP=60u
.tran 20n 4u UIC
.end
|}

let small_circuit = (Netlist.Parser.parse small_deck).Netlist.Parser.circuit

let small_tran = { Netlist.Parser.tstep = 20e-9; tstop = 4e-6; uic = true }

let small_config = Anafault.Simulate.default_config ~tran:small_tran ~observed:"out" ()

let small_nominal = lazy (fst (Anafault.Simulate.nominal small_config small_circuit))

let small_fault =
  Faults.Fault.make ~id:"#b"
    ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "0" })
    ~mechanism:"metal1_short" ()

let small_faulty =
  lazy
    (Anafault.Simulate.run_one small_config small_circuit
       ~nominal:(Lazy.force small_nominal) small_fault)

let small_session = lazy (Anafault.Simulate.session small_config small_circuit)

let extraction = lazy (Lazy.force Helpers.glrfm).Cat.extraction

let lu_fixture =
  let n = 30 in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 10.0 else 1.0 /. float_of_int (1 + abs (i - j))))
  in
  let b = Array.init n (fun i -> float_of_int (i mod 7)) in
  (a, b)

let lu_scratch_fixture =
  let n = 30 in
  (Array.make_matrix n n 0.0, Array.make n 0.0, Sim.Lu.make_scratch n)

(* --- the suite --- *)

let tests =
  [
    (* Tab. 1: defect statistics rendering. *)
    Test.make ~name:"tab1/table_render" (Staged.stage (fun () ->
        ignore (Layout.Tech.table1 Layout.Tech.default)));
    (* Sec. VI counts: fault-universe construction and LIFT's bridge
       enumeration over the extracted VCO. *)
    Test.make ~name:"counts/universe_build" (Staged.stage (fun () ->
        ignore (Faults.Universe.build small_circuit)));
    Test.make ~name:"counts/bridge_sites_vco" (Staged.stage (fun () ->
        ignore (Defects.Sites.bridges (Lazy.force extraction))));
    (* Fig. 4: one faulty transient of the small fixture. *)
    Test.make ~name:"fig4/faulty_transient" (Staged.stage (fun () ->
        let faulty =
          Faults.Inject.apply ~model:Faults.Inject.default_resistor small_circuit
            small_fault
        in
        ignore
          (Sim.Engine.run faulty
             (Sim.Engine.Analysis.Tran
                {
                  tstep = small_tran.Netlist.Parser.tstep;
                  tstop = small_tran.Netlist.Parser.tstop;
                  uic = true;
                }))));
    (* Fig. 5: tolerance comparison and coverage evaluation. *)
    Test.make ~name:"fig5/first_detection" (Staged.stage (fun () ->
        let nominal = Lazy.force small_nominal in
        ignore
          (Anafault.Detect.first_detection ~tolerance:Anafault.Detect.paper_tolerance
             ~signal:"out" ~nominal ~faulty:nominal)));
    Test.make ~name:"fig5/coverage_curve" (Staged.stage (fun () ->
        let run =
          { Anafault.Simulate.config = small_config;
            nominal = Lazy.force small_nominal;
            nominal_stats =
              { Sim.Engine.newton_iterations = 0; accepted_steps = 0; rejected_steps = 0 };
            results = [ Lazy.force small_faulty ];
            wall_seconds = 0.0;
            cpu_seconds = 0.0 }
        in
        ignore (Anafault.Coverage.curve run ~points:100)));
    (* Fig. 6: resistor-model injection. *)
    Test.make ~name:"fig6/inject_resistor" (Staged.stage (fun () ->
        ignore
          (Faults.Inject.apply ~model:Faults.Inject.default_resistor small_circuit
             small_fault)));
    (* Sec. VI timing: the same fault under each model, end to end. *)
    Test.make ~name:"models/source_run_one" (Staged.stage (fun () ->
        ignore
          (Anafault.Simulate.run_one
             { small_config with model = Faults.Inject.Source }
             small_circuit ~nominal:(Lazy.force small_nominal) small_fault)));
    Test.make ~name:"models/resistor_run_one" (Staged.stage (fun () ->
        ignore
          (Anafault.Simulate.run_one
             { small_config with model = Faults.Inject.default_resistor }
             small_circuit ~nominal:(Lazy.force small_nominal) small_fault)));
    (* Batch mode: the same fault through a shared engine session (patch,
       simulate, restore) versus the rebuild-per-fault path above. *)
    Test.make ~name:"batch/session_run_one" (Staged.stage (fun () ->
        ignore
          (Anafault.Simulate.run_one_in small_config (Lazy.force small_session)
             ~nominal:(Lazy.force small_nominal) small_fault)));
    Test.make ~name:"batch/session_create" (Staged.stage (fun () ->
        ignore (Anafault.Simulate.session small_config small_circuit)));
    (* Primitives. *)
    Test.make ~name:"kernel/lu_solve_30" (Staged.stage (fun () ->
        let a, b = lu_fixture in
        ignore (Sim.Lu.solve_copy a b)));
    Test.make ~name:"kernel/lu_scratch_30" (Staged.stage (fun () ->
        (* Factor into preallocated buffers: the copy is the only
           allocation-free-path cost left per solve. *)
        let a, b = lu_fixture in
        let abuf, bbuf, scratch = lu_scratch_fixture in
        for i = 0 to Array.length b - 1 do
          Array.blit a.(i) 0 abuf.(i) 0 (Array.length b)
        done;
        Array.blit b 0 bbuf 0 (Array.length b);
        Sim.Lu.factor_solve scratch abuf bbuf));
    Test.make ~name:"kernel/mosfet_eval" (Staged.stage (fun () ->
        ignore
          (Sim.Mosfet.eval Netlist.Device.default_nmos ~w:10e-6 ~l:1e-6 ~vgs:2.0
             ~vds:1.5)));
    Test.make ~name:"kernel/weighted_ca" (Staged.stage (fun () ->
        ignore
          (Geom.Critical_area.weighted
             (Geom.Critical_area.Cubic { x_min = 1000.0 })
             (Geom.Critical_area.short_area ~spacing:2500 ~length:100000))));
  ]

let run () =
  Helpers.banner "Bechamel micro-benchmarks (one kernel per experiment)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw =
    Benchmark.all cfg
      [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"liftsim" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> (name, ns) :: acc
        | Some _ | None -> (name, Float.nan) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-36s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-36s %16s\n" name human)
    rows
