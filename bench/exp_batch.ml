(* Batch-mode experiments for the session/scheduler rework:

   E-B1 - session reuse: simulate the same >=20-fault universe once by
   rebuilding all engine state per fault (the pre-session reference
   path) and once through a shared Engine.Session whose node map and
   solver buffers persist across the batch.

   E-B2 - scheduling: on a deliberately skewed fault list (full
   transients at even indices, instantly failing faults at odd ones),
   compare static round-robin chunking against the work-stealing
   scheduler.  The box the harness runs on may have a
   single core, so besides wall clock we report each schedule's critical
   path - the largest per-domain busy time, i.e. the wall clock a
   multi-core machine would see. *)

let deck =
  {|batch two-stage amplifier
VDD vdd 0 5
VIN in 0 PULSE(0 5 0 10n 10n 1u 2u)
RD1 vdd mid 10k
M1 mid in 0 0 NM W=20u L=1u
RD2 vdd out 10k
M2 out mid 0 0 NM W=20u L=1u
RF out fb 5k
CF fb 0 50f
CL out 0 20f
.model NM NMOS VTO=1 KP=60u
.tran 20n 4u UIC
.end
|}

let tran = { Netlist.Parser.tstep = 20e-9; tstop = 4e-6; uic = true }

let wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Static round-robin reference: domain [d] simulates exactly the faults
   at indices congruent to [d], no stealing.  Same session machinery as
   Parsim so the comparison isolates the schedule. *)
let static_round_robin ~domains config circuit ~nominal faults =
  let faults = Array.of_list faults in
  let n = Array.length faults in
  let results = Array.make n None in
  let busy = Array.make domains 0.0 in
  let chunk d () =
    let t0 = Unix.gettimeofday () in
    let sess = Anafault.Simulate.session config circuit in
    let i = ref d in
    while !i < n do
      let fault = faults.(!i) in
      results.(!i) <-
        Some
          (Anafault.Simulate.guard fault (fun () ->
               Anafault.Simulate.run_one_in config sess ~nominal fault));
      i := !i + domains
    done;
    busy.(d) <- Unix.gettimeofday () -. t0
  in
  let spawned = List.init (domains - 1) (fun d -> Domain.spawn (chunk (d + 1))) in
  chunk 0 ();
  List.iter Domain.join spawned;
  let results =
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false)
  in
  (results, Array.to_list busy)

let run () =
  Helpers.banner "Batch mode - session reuse and work-stealing schedule";
  let circuit = (Netlist.Parser.parse deck).Netlist.Parser.circuit in
  let config = Anafault.Simulate.default_config ~tran ~observed:"out" () in
  let faults = Faults.Universe.build circuit in
  let n_faults = List.length faults in
  Printf.printf "fault universe: %d faults (two-stage amplifier fixture)\n" n_faults;

  (* E-B1: rebuild-per-fault vs shared session, same faults, serial.
     The loops are short, so interleave several repetitions (so GC and
     cache drift hit both paths alike) and keep each path's best round,
     after one warm-up so neither pays the lazy setup.  Run the
     comparison under two stimuli: the realistic 4 us test (transient
     work dominates; setup amortization is a small, steady win) and a
     short screening stimulus where the per-fault setup is a visible
     fraction of the work. *)
  let compare_paths label config =
    let nominal, _ = Anafault.Simulate.nominal config circuit in
    let rebuild_loop () =
      List.map
        (fun f ->
          Anafault.Simulate.guard f (fun () ->
              Anafault.Simulate.run_one config circuit ~nominal f))
        faults
    in
    let session_loop () =
      let sess = Anafault.Simulate.session config circuit in
      List.map
        (fun f ->
          Anafault.Simulate.guard f (fun () ->
              Anafault.Simulate.run_one_in config sess ~nominal f))
        faults
    in
    let reps = 15 in
    ignore (rebuild_loop ());
    ignore (session_loop ());
    let t_rebuild = ref infinity and t_session = ref infinity in
    let rebuild = ref [] and session = ref [] in
    for _ = 1 to reps do
      Gc.full_major ();
      let r, t = wall rebuild_loop in
      if t < !t_rebuild then begin
        t_rebuild := t;
        rebuild := r
      end;
      Gc.full_major ();
      let r, t = wall session_loop in
      if t < !t_session then begin
        t_session := t;
        session := r
      end
    done;
    Printf.printf "%s  (best of %d)\n" label reps;
    Printf.printf "  %-30s %10.4fs\n" "rebuild per fault (reference)" !t_rebuild;
    Printf.printf "  %-30s %10.4fs\n" "shared session (patched)" !t_session;
    Printf.printf "  %-30s %9.1f%%\n" "session saving"
      (100.0 *. (1.0 -. (!t_session /. !t_rebuild)));
    (!rebuild, !session)
  in
  (* DC screening first: one operating point per fault.  Here the solve
     is tens of microseconds, so the per-fault topology setup the
     session amortises (node map, device compilation, buffer allocation)
     is a visible fraction of the work. *)
  let inject f = Faults.Inject.apply ~model:config.Anafault.Simulate.model circuit f in
  let dc_rebuild () =
    List.iter
      (fun f ->
        try ignore (Sim.Engine.run (inject f) Sim.Engine.Analysis.Op) with _ -> ())
      faults
  in
  let dc_session () =
    let sess = Sim.Engine.Session.create circuit in
    List.iter
      (fun f ->
        try
          Sim.Engine.Session.with_patch sess (inject f) (fun s ->
              ignore (Sim.Engine.Session.solve_dc s))
        with _ -> ())
      faults
  in
  let dc_reps = 50 in
  ignore (dc_rebuild ());
  ignore (dc_session ());
  let t_dc_rebuild = ref infinity and t_dc_session = ref infinity in
  for _ = 1 to dc_reps do
    Gc.full_major ();
    let (), t = wall dc_rebuild in
    if t < !t_dc_rebuild then t_dc_rebuild := t;
    Gc.full_major ();
    let (), t = wall dc_session in
    if t < !t_dc_session then t_dc_session := t
  done;
  Printf.printf "DC screening (operating point per fault)  (best of %d)\n" dc_reps;
  Printf.printf "  %-30s %10.4fs\n" "rebuild per fault (reference)" !t_dc_rebuild;
  Printf.printf "  %-30s %10.4fs\n" "shared session (patched)" !t_dc_session;
  Printf.printf "  %-30s %9.1f%%\n" "session saving"
    (100.0 *. (1.0 -. (!t_dc_session /. !t_dc_rebuild)));

  let rebuild, session = compare_paths "realistic stimulus (4 us)" config in
  let screening =
    { config with
      tran = { Netlist.Parser.tstep = 50e-9; tstop = 0.5e-6; uic = true } }
  in
  ignore (compare_paths "screening stimulus (0.5 us)" screening);
  let outcome (r : Anafault.Simulate.fault_result) =
    match r.outcome with
    | Anafault.Simulate.Detected _ -> `D
    | Anafault.Simulate.Undetected -> `U
    | Anafault.Simulate.Sim_failed _ -> `F
  in
  let disagreements =
    List.fold_left2
      (fun acc a b -> if outcome a <> outcome b then acc + 1 else acc)
      0 rebuild session
  in
  Printf.printf "%-32s %10d  (want 0)\n" "per-fault disagreements" disagreements;

  (* E-B2: skewed list - interleave the real faults (each a full
     transient, ~hundreds of microseconds) with trivially failing ones
     (unknown device -> Sim_failed in microseconds).  With two domains,
     static round-robin deals every real fault to domain 0 and every
     trivial one to domain 1, which then idles; the stealing scheduler
     splits the real work evenly. *)
  let trivial i =
    Faults.Fault.make
      ~id:(Printf.sprintf "T%d" i)
      ~kind:(Faults.Fault.Break
               { net = "in"; moved = [ { Faults.Fault.device = "MGHOST"; port = 0 } ] })
      ~mechanism:"bench_filler" ()
  in
  let skewed =
    List.concat (List.mapi (fun i f -> [ f; trivial i ]) faults)
  in
  let domains = 2 in
  let nominal, _ = Anafault.Simulate.nominal config circuit in
  (* Serial per-fault costs, measured without domain contention.  On a
     one-core box the per-domain elapsed times of a concurrent run count
     time spent waiting for the shared core, so schedule quality is
     judged on the modelled critical path instead: assign each fault its
     serial cost, sum per domain, take the max.  That max is the wall
     clock a machine with [domains] real cores would see. *)
  let serial_cost =
    let sess = Anafault.Simulate.session config circuit in
    Array.of_list
      (List.map
         (fun f ->
           let _, t =
             wall (fun () ->
                 Anafault.Simulate.guard f (fun () ->
                     Anafault.Simulate.run_one_in config sess ~nominal f))
           in
           t)
         skewed)
  in
  let modelled indices_per_domain =
    List.map
      (fun idxs -> List.fold_left (fun acc i -> acc +. serial_cost.(i)) 0.0 idxs)
      indices_per_domain
  in
  let n_skewed = List.length skewed in
  let rr_indices =
    List.init domains (fun d ->
        List.filter (fun i -> i mod domains = d) (List.init n_skewed Fun.id))
  in
  let (_, rr_busy), t_rr =
    wall (fun () -> static_round_robin ~domains config circuit ~nominal skewed)
  in
  ignore rr_busy;
  let (_, ws_stats), t_ws =
    wall (fun () ->
        Anafault.Parsim.run_with_stats ~clamp:false ~domains config circuit skewed)
  in
  let ws_indices =
    List.map (fun (d : Anafault.Parsim.domain_stats) -> d.fault_indices) ws_stats
  in
  let rr_load = modelled rr_indices and ws_load = modelled ws_indices in
  let critical l = List.fold_left Float.max 0.0 l in
  Printf.printf "\nskewed list (%d faults, all real work at even indices), %d domains\n"
    n_skewed domains;
  Printf.printf "%-34s %11s %11s\n" "" "round-robin" "stealing";
  Printf.printf "%-34s %10.4fs %10.4fs\n" "wall clock (this 1-core box)" t_rr t_ws;
  Printf.printf "%-34s %10.4fs %10.4fs\n" "critical path (serial-cost model)"
    (critical rr_load) (critical ws_load);
  List.iteri
    (fun d rr ->
      let ws = List.nth ws_load d in
      Printf.printf "%-34s %10.4fs %10.4fs\n"
        (Printf.sprintf "domain %d assigned work" d) rr ws)
    rr_load;
  Printf.printf
    "(critical path = max per-domain sum of serially measured per-fault cost;\n\
    \ it predicts multi-core wall clock, which stealing should level)\n"
