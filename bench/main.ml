(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index), then runs the
   bechamel micro-suite.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- quick   # skip ablations and micro-benchmarks
     dune exec bench/main.exe -- batch   # only the session/scheduler experiment
     dune exec bench/main.exe -- obs     # only the telemetry-overhead experiment
     dune exec bench/main.exe -- solver  # only the solver-backend crossover
     dune exec bench/main.exe -- batch-faults  # only the lock-step batch-width crossover
     dune exec bench/main.exe -- lift    # only the staged-pipeline scaling experiment
*)

let () =
  let quick = Array.exists (String.equal "quick") Sys.argv in
  let batch_faults_only = Array.exists (String.equal "batch-faults") Sys.argv in
  let batch_only =
    (not batch_faults_only) && Array.exists (String.equal "batch") Sys.argv
  in
  let obs_only = Array.exists (String.equal "obs") Sys.argv in
  let solver_only = Array.exists (String.equal "solver") Sys.argv in
  let lift_only = Array.exists (String.equal "lift") Sys.argv in
  Printf.printf
    "Reproduction harness: Sebeke/Teixeira/Ohletz, DATE 1995\n\
     'Automatic Fault Extraction and Simulation of Layout Realistic Faults\n\
     for Integrated Analogue Circuits'\n";
  if batch_faults_only then begin
    Exp_batch_faults.run ();
    Helpers.banner "Done";
    exit 0
  end;
  if batch_only then begin
    Exp_batch.run ();
    Helpers.banner "Done";
    exit 0
  end;
  if obs_only then begin
    Exp_obs.run ();
    Helpers.banner "Done";
    exit 0
  end;
  if solver_only then begin
    Exp_solver.run ();
    Helpers.banner "Done";
    exit 0
  end;
  if lift_only then begin
    Exp_lift.run ();
    Helpers.banner "Done";
    exit 0
  end;
  Exp_tab1.run ();
  Exp_counts.run ();
  Exp_l2rfm.run ();
  Exp_fig4.run ();
  let fig5_run = Exp_fig5.run () in
  Exp_fig6.run ();
  Exp_models.run ();
  if not quick then begin
    Exp_montecarlo.run ();
    Exp_testprep.run ();
    Exp_batch.run ();
    Exp_ablation.run fig5_run;
    Exp_obs.run ();
    Exp_solver.run ();
    Exp_batch_faults.run ();
    Exp_lift.run ();
    Micro.run ()
  end;
  Helpers.banner "Done"
