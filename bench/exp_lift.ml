(* Staged-pipeline scaling: tiles vs wall time, serial vs pipeline.

   Over growing Layout_synth.vco_array workloads (4 MOS devices per
   cell), measure the monolithic [Extractor.extract |> Lift.run] against
   the staged pipeline in four states:

     cold  - tiled, empty artefact cache (pays tiling + digest + store);
     warm  - same cache, nothing changed (every tile of every stage hit);
     incr  - one cell's strap nudged 500 nm (exactly one dirty tile per
             stage recomputes);
     2 dom - cold again with two worker domains.

   Every pipeline run is checked byte-identical to the serial ranked
   list before its time is reported.  Each row also goes out as one
   machine-readable `lift-scaling {...}` JSON line.

   Honesty note: this container is single-core, so the 2-domain column
   measures scheduling overhead, not speedup - domain scaling needs
   real cores.  The cold/warm/incr columns are the point here. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let temp_dir () =
  let dir = Filename.temp_file "exp_lift" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let ranked_text result =
  Faults.Fault_list.to_string (Defects.Lift.ranked result)

let pipeline ~tile ~domains ~cache mask =
  let config =
    {
      Defects.Pipeline.tile_nm = tile;
      domains;
      cache_dir = cache;
      obs = Obs.null;
      options = Defects.Lift.default_options;
    }
  in
  Defects.Pipeline.run ~config mask

let computed (c : Defects.Pipeline.counters) =
  c.connectivity.computed + c.sites.computed + c.critical_area.computed

let row ~rows ~cols =
  let base = Synth.Layout_synth.vco_array ~rows ~cols () in
  let edited =
    Synth.Layout_synth.vco_array ~rows ~cols ~nudge:(rows / 2, cols / 2) ()
  in
  let tile = Synth.Layout_synth.cell_pitch_nm in
  let serial_ranked, serial_s =
    time (fun () ->
        ranked_text
          (Defects.Lift.run ~options:Defects.Lift.default_options
             (Extract.Extractor.extract base)))
  in
  let serial_edited =
    ranked_text
      (Defects.Lift.run ~options:Defects.Lift.default_options
         (Extract.Extractor.extract edited))
  in
  let cache = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf cache) @@ fun () ->
  let check what expect (run : Defects.Pipeline.t) =
    let got = ranked_text run.result in
    if not (String.equal got expect) then begin
      Printf.printf "MISMATCH: %s diverged from serial on %dx%d\n" what rows
        cols;
      exit 1
    end;
    run
  in
  let cold, cold_s =
    time (fun () ->
        check "cold" serial_ranked
          (pipeline ~tile ~domains:1 ~cache:(Some cache) base))
  in
  let _warm, warm_s =
    time (fun () ->
        check "warm" serial_ranked
          (pipeline ~tile ~domains:1 ~cache:(Some cache) base))
  in
  let incr, incr_s =
    time (fun () ->
        check "incr" serial_edited
          (pipeline ~tile ~domains:1 ~cache:(Some cache) edited))
  in
  let _two, two_s =
    time (fun () ->
        check "2dom" serial_ranked
          (pipeline ~tile ~domains:2 ~cache:None base))
  in
  let tiles = cold.counters.tiles in
  Printf.printf "%3dx%-3d %7d %6d %8.3f %8.3f %8.3f %8.3f %8.3f   %d/%d\n"
    rows cols (4 * rows * cols) tiles serial_s cold_s warm_s incr_s two_s
    (computed incr.counters) (3 * tiles);
  let j =
    Obs.Json.Obj
      [
        ("rows", Obs.Json.Int rows);
        ("cols", Obs.Json.Int cols);
        ("devices", Obs.Json.Int (4 * rows * cols));
        ("tiles", Obs.Json.Int tiles);
        ("serial_s", Obs.Json.Float serial_s);
        ("cold_s", Obs.Json.Float cold_s);
        ("warm_s", Obs.Json.Float warm_s);
        ("incr_s", Obs.Json.Float incr_s);
        ("two_domains_s", Obs.Json.Float two_s);
        ("incr_counters", Defects.Pipeline.counters_to_json incr.counters);
      ]
  in
  Printf.printf "lift-scaling %s\n" (Obs.Json.to_string j)

let run () =
  Helpers.banner "Staged LIFT pipeline - tiles vs wall time";
  Printf.printf
    "delay-cell arrays, tile = cell pitch (%d nm); every pipeline run\n\
     verified byte-identical to the serial ranked list first.\n\
     (single-core container: the 2-domain column is overhead, not speedup)\n\n"
    Synth.Layout_synth.cell_pitch_nm;
  Printf.printf "%7s %7s %6s %8s %8s %8s %8s %8s   %s\n" "grid" "devices"
    "tiles" "serial" "cold" "warm" "incr" "2 dom" "recomputed";
  List.iter
    (fun (rows, cols) -> row ~rows ~cols)
    [ (4, 4); (8, 8); (12, 12) ]
